//! Per-tenant accounting and fleet fairness.
//!
//! Tenant identity rides every [`RequestOutcome`] from generation through
//! routing to completion, so a fleet run can be sliced per tenant:
//! SAR, goodput and shed counts for each tenant, plus two fairness
//! scalars over the per-tenant SAR vector — Jain's index (1 = perfectly
//! even attainment, → 1/n as one tenant starves) and worst-tenant SAR
//! (the paper's "nobody left behind" gate). Untagged outcomes group
//! under [`TenantId::UNTAGGED`] so legacy replay traces still report.

use std::collections::BTreeMap;

use tetriserve_core::RequestOutcome;
use tetriserve_simulator::time::SimTime;
use tetriserve_simulator::trace::TenantId;

/// One tenant's slice of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant (stream index; `UNTAGGED` for unattributed requests).
    pub tenant: TenantId,
    /// Requests attributed to this tenant (including shed ones).
    pub requests: usize,
    /// Requests shed before execution.
    pub shed: usize,
    /// SLO attainment over the tenant's requests.
    pub sar: f64,
    /// SLO-met completions per second over the run's makespan.
    pub goodput: f64,
    /// GPU-seconds consumed by the tenant's requests.
    pub gpu_seconds: f64,
}

/// Slices `outcomes` by tenant, computing goodput against the provided
/// run makespan. Tenants appear in ascending id order (with
/// `UNTAGGED` — `u32::MAX` — last).
pub fn tenant_summaries(outcomes: &[RequestOutcome], makespan: SimTime) -> Vec<TenantSummary> {
    let mut by_tenant: BTreeMap<u32, Vec<&RequestOutcome>> = BTreeMap::new();
    for o in outcomes {
        by_tenant.entry(o.tenant.0).or_default().push(o);
    }
    let span = makespan.as_secs_f64().max(f64::MIN_POSITIVE);
    by_tenant
        .into_iter()
        .map(|(tenant, slice)| {
            let met = slice.iter().filter(|o| o.met_slo()).count();
            TenantSummary {
                tenant: TenantId(tenant),
                requests: slice.len(),
                shed: slice.iter().filter(|o| o.shed).count(),
                sar: met as f64 / slice.len() as f64,
                goodput: met as f64 / span,
                gpu_seconds: slice.iter().map(|o| o.gpu_seconds).sum(),
            }
        })
        .collect()
}

/// Jain's fairness index over a vector of non-negative allocations:
/// `(Σx)² / (n·Σx²)`. Ranges from `1/n` (one tenant takes everything)
/// to `1.0` (perfect equality). Empty or all-zero input counts as
/// perfectly fair.
pub fn jains_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// The minimum per-tenant SAR — the fairness floor a router is judged
/// on. Empty input counts as perfect attainment.
pub fn worst_tenant_sar(summaries: &[TenantSummary]) -> f64 {
    summaries
        .iter()
        .map(|s| s.sar)
        .min_by(|a, b| a.total_cmp(b))
        .unwrap_or(1.0)
}

/// Jain's index over the per-tenant SAR vector.
pub fn sar_fairness(summaries: &[TenantSummary]) -> f64 {
    let sars: Vec<f64> = summaries.iter().map(|s| s.sar).collect();
    jains_index(&sars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_costmodel::Resolution;
    use tetriserve_simulator::trace::RequestId;

    fn outcome(tenant: u32, id: u64, met: bool, shed: bool) -> RequestOutcome {
        RequestOutcome {
            tenant: TenantId(tenant),
            id: RequestId(id),
            resolution: Resolution::R512,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_secs_f64(2.0),
            completion: if shed {
                None
            } else {
                Some(SimTime::from_secs_f64(if met { 1.0 } else { 3.0 }))
            },
            gpu_seconds: 1.5,
            steps_executed: if shed { 0 } else { 50 },
            sp_degree_step_sum: if shed { 0 } else { 50 },
            retries: 0,
            shed,
            steps_shed: 0,
            encode_done: None,
            denoise_done: None,
        }
    }

    #[test]
    fn summaries_slice_by_tenant_in_id_order() {
        let outcomes = vec![
            outcome(1, 0, true, false),
            outcome(0, 1, true, false),
            outcome(1, 2, false, false),
            outcome(0, 3, true, false),
            outcome(1, 4, false, true),
        ];
        let s = tenant_summaries(&outcomes, SimTime::from_secs_f64(10.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].tenant, TenantId(0));
        assert_eq!(s[0].requests, 2);
        assert!((s[0].sar - 1.0).abs() < 1e-12);
        assert!((s[0].goodput - 0.2).abs() < 1e-12);
        assert_eq!(s[1].tenant, TenantId(1));
        assert_eq!(s[1].requests, 3);
        assert_eq!(s[1].shed, 1);
        assert!((s[1].sar - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn untagged_outcomes_group_last() {
        let outcomes = vec![
            outcome(u32::MAX, 0, true, false),
            outcome(2, 1, true, false),
        ];
        let s = tenant_summaries(&outcomes, SimTime::from_secs_f64(1.0));
        assert_eq!(s[0].tenant, TenantId(2));
        assert_eq!(s[1].tenant, TenantId::UNTAGGED);
    }

    #[test]
    fn jains_index_bounds() {
        assert!((jains_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jains_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((jains_index(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        // One tenant takes everything: 1/n.
        assert!((jains_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let mid = jains_index(&[1.0, 0.5]);
        assert!(mid > 0.5 && mid < 1.0, "{mid}");
    }

    #[test]
    fn worst_tenant_sar_is_the_floor() {
        let outcomes = vec![
            outcome(0, 0, true, false),
            outcome(1, 1, false, false),
            outcome(1, 2, true, false),
        ];
        let s = tenant_summaries(&outcomes, SimTime::from_secs_f64(1.0));
        assert!((worst_tenant_sar(&s) - 0.5).abs() < 1e-12);
        assert!(worst_tenant_sar(&[]) == 1.0);
        let fairness = sar_fairness(&s);
        assert!(fairness > 0.8 && fairness < 1.0, "{fairness}");
    }
}
