//! # tetriserve-metrics
//!
//! Post-processing of serving runs into the paper's metrics:
//!
//! * [`mod@sar`] — SLO Attainment Ratio, overall and per
//!   resolution (spider plots);
//! * [`latency`] — completed-request latency CDFs, percentiles and means
//!   (Figure 9, Table 5);
//! * [`timeseries`] — windowed SAR over time (Figure 10) and mean
//!   sequence-parallel degree over time (Figure 11);
//! * [`utilization`] — per-GPU busy fractions and cluster-occupancy series
//!   reconstructed from execution traces;
//! * [`batching`] — selective-batching statistics from traces (§5);
//! * [`quality`] — quality-debt accounting for degraded serving (steps
//!   shed by the deadline-rescue ladder, full-quality SAR, mean delivered
//!   quality);
//! * [`fleet`] — multi-cluster aggregation: fleet SAR/goodput, routing
//!   counts and cross-cluster load imbalance;
//! * [`tenancy`] — per-tenant SAR/goodput slices plus fleet fairness
//!   (Jain's index over per-tenant SAR, worst-tenant SAR);
//! * [`stages`] — per-stage latency breakdown
//!   (encode/denoise/decode), stage share of the SLO budget, and
//!   stage-pool utilisation under disaggregated layouts;
//! * [`report`] — plain-text tables and ASCII charts used by the benchmark
//!   harness to print paper-style artefacts.
//!
//! # Examples
//!
//! ```
//! use tetriserve_metrics::sar::sar;
//!
//! // An empty run trivially attains every SLO.
//! assert_eq!(sar(&[]), 1.0);
//! ```

#![warn(missing_docs)]

pub mod batching;
pub mod fleet;
pub mod latency;
pub mod quality;
pub mod report;
pub mod sar;
pub mod stages;
pub mod tenancy;
pub mod timeseries;
pub mod utilization;

pub use batching::{batching_stats, BatchingStats};
pub use fleet::{load_imbalance, ClusterReport, FleetReport, HANDOFF_HISTOGRAM_EDGES};
pub use latency::{cdf_at, latency_cdf, mean_latency, percentile, LatencySummary};
pub use quality::{
    degraded_completions, full_quality_sar, mean_delivered_quality, quality_debt_by_resolution,
    quality_debt_step_seconds, quality_debt_steps, rescued_requests,
};
pub use report::{bar_chart, fmt_sar, series, TextTable};
pub use sar::{mean_gpu_seconds, sar, sar_by_resolution};
pub use stages::{pool_utilization, stage_latency_breakdown, stage_slo_share, StageBreakdown};
pub use tenancy::{jains_index, sar_fairness, tenant_summaries, worst_tenant_sar, TenantSummary};
pub use timeseries::{inflight_series, mean_sp_degree_series, windowed_sar};
pub use utilization::{busy_gpu_series, gpu_utilization, UtilizationReport};
