//! Time-series views of a serving run.
//!
//! * **Windowed SAR** — Figure 10 plots SAR over time under bursty traffic;
//!   we bucket requests by arrival time and compute per-window attainment.
//! * **Mean SP degree** — Figure 11 plots the average sequence-parallel
//!   degree TetriServe assigns over time, per resolution; we mine it from
//!   the execution trace's dispatch records.

use std::collections::BTreeMap;

use tetriserve_core::RequestOutcome;
use tetriserve_costmodel::Resolution;
use tetriserve_simulator::time::SimTime;
use tetriserve_simulator::trace::{Trace, TraceEvent};

/// SAR per fixed-length arrival window: `(window_start_s, sar)` for every
/// window containing at least one request.
///
/// # Panics
///
/// Panics if `window_s` is not positive.
pub fn windowed_sar(outcomes: &[RequestOutcome], window_s: f64) -> Vec<(f64, f64)> {
    assert!(window_s > 0.0, "window must be positive");
    let mut buckets: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for o in outcomes {
        let w = (o.arrival.as_secs_f64() / window_s) as u64;
        let e = buckets.entry(w).or_insert((0, 0));
        e.1 += 1;
        if o.met_slo() {
            e.0 += 1;
        }
    }
    buckets
        .into_iter()
        .map(|(w, (m, n))| (w as f64 * window_s, m as f64 / n as f64))
        .collect()
}

/// Mean SP degree of steps *executed* in each time window, per resolution:
/// `resolution -> [(window_start_s, mean_degree)]`. Windows with no steps
/// for a resolution are omitted.
///
/// Step weight is attributed to the window containing the dispatch start;
/// dispatches are round-sized, so this matches the paper's sampling
/// granularity.
///
/// # Panics
///
/// Panics if `window_s` is not positive.
pub fn mean_sp_degree_series(
    trace: &Trace,
    resolution_of: &BTreeMap<tetriserve_simulator::trace::RequestId, Resolution>,
    window_s: f64,
) -> BTreeMap<Resolution, Vec<(f64, f64)>> {
    assert!(window_s > 0.0, "window must be positive");
    // (resolution, window) -> (Σ degree·steps, Σ steps)
    let mut acc: BTreeMap<(Resolution, u64), (u64, u64)> = BTreeMap::new();
    for e in trace.events() {
        let TraceEvent::DispatchStart {
            time,
            requests,
            gpus,
            steps,
            ..
        } = e
        else {
            continue;
        };
        let w = (time.as_secs_f64() / window_s) as u64;
        let degree = gpus.len() as u64;
        for r in requests {
            let Some(&res) = resolution_of.get(r) else {
                continue;
            };
            let entry = acc.entry((res, w)).or_insert((0, 0));
            entry.0 += degree * u64::from(*steps);
            entry.1 += u64::from(*steps);
        }
    }
    let mut out: BTreeMap<Resolution, Vec<(f64, f64)>> = BTreeMap::new();
    for ((res, w), (num, den)) in acc {
        out.entry(res)
            .or_default()
            .push((w as f64 * window_s, num as f64 / den as f64));
    }
    out
}

/// Cluster-wide queue of in-flight requests over time, sampled at request
/// arrivals and completions (for load inspection).
pub fn inflight_series(outcomes: &[RequestOutcome]) -> Vec<(f64, i64)> {
    let mut deltas: Vec<(SimTime, i64)> = Vec::new();
    for o in outcomes {
        deltas.push((o.arrival, 1));
        if let Some(c) = o.completion {
            deltas.push((c, -1));
        }
    }
    deltas.sort();
    let mut level = 0;
    deltas
        .into_iter()
        .map(|(t, d)| {
            level += d;
            (t.as_secs_f64(), level)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_simulator::gpuset::GpuSet;
    use tetriserve_simulator::time::SimDuration;
    use tetriserve_simulator::trace::{DispatchId, RequestId, TenantId};

    fn outcome(id: u64, arrival_s: f64, met: bool) -> RequestOutcome {
        RequestOutcome {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: Resolution::R512,
            arrival: SimTime::from_secs_f64(arrival_s),
            deadline: SimTime::from_secs_f64(arrival_s + 2.0),
            completion: Some(SimTime::from_secs_f64(
                arrival_s + if met { 1.0 } else { 3.0 },
            )),
            gpu_seconds: 1.0,
            steps_executed: 50,
            sp_degree_step_sum: 100,
            retries: 0,
            shed: false,
            steps_shed: 0,
            encode_done: None,
            denoise_done: None,
        }
    }

    #[test]
    fn windowed_sar_buckets_by_arrival() {
        let outcomes = vec![
            outcome(0, 1.0, true),
            outcome(1, 2.0, false),
            outcome(2, 12.0, true),
        ];
        let series = windowed_sar(&outcomes, 10.0);
        assert_eq!(series, vec![(0.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    fn sp_degree_series_from_trace() {
        let mut trace = Trace::new();
        let push = |trace: &mut Trace, t: f64, gpus: usize, steps: u32| {
            trace.record(TraceEvent::DispatchStart {
                time: SimTime::from_secs_f64(t),
                dispatch: DispatchId(0),
                requests: vec![RequestId(1)],
                gpus: GpuSet::contiguous(0, gpus),
                steps,
                per_step: SimDuration::from_millis(10),
            });
        };
        push(&mut trace, 0.5, 2, 10); // window 0: 2×10
        push(&mut trace, 0.9, 4, 10); // window 0: 4×10 -> mean 3
        push(&mut trace, 1.5, 8, 5); // window 1: mean 8
        let res_of = BTreeMap::from([(RequestId(1), Resolution::R1024)]);
        let series = mean_sp_degree_series(&trace, &res_of, 1.0);
        let points = &series[&Resolution::R1024];
        assert_eq!(points.len(), 2);
        assert!((points[0].1 - 3.0).abs() < 1e-12);
        assert!((points[1].1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_requests_are_skipped() {
        let mut trace = Trace::new();
        trace.record(TraceEvent::DispatchStart {
            time: SimTime::ZERO,
            dispatch: DispatchId(0),
            requests: vec![RequestId(99)],
            gpus: GpuSet::contiguous(0, 2),
            steps: 1,
            per_step: SimDuration::from_millis(1),
        });
        let series = mean_sp_degree_series(&trace, &BTreeMap::new(), 1.0);
        assert!(series.is_empty());
    }

    #[test]
    fn inflight_tracks_arrivals_and_completions() {
        let outcomes = vec![outcome(0, 0.0, true), outcome(1, 0.5, true)];
        let series = inflight_series(&outcomes);
        let peak = series.iter().map(|&(_, l)| l).max().unwrap();
        assert_eq!(peak, 2);
        assert_eq!(series.last().unwrap().1, 0);
    }
}
