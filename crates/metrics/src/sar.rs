//! SLO Attainment Ratio (SAR) — the paper's primary metric.

use std::collections::BTreeMap;

use tetriserve_core::RequestOutcome;
use tetriserve_costmodel::Resolution;

/// Fraction of requests finishing within their SLO. Empty input counts as
/// perfect attainment.
///
/// # Examples
///
/// ```
/// use tetriserve_metrics::sar::sar;
/// use tetriserve_core::RequestOutcome;
/// use tetriserve_costmodel::Resolution;
/// use tetriserve_simulator::time::SimTime;
/// use tetriserve_simulator::trace::{RequestId, TenantId};
///
/// let outcome = |met: bool| RequestOutcome {
///     tenant: TenantId::UNTAGGED,
///     id: RequestId(0),
///     resolution: Resolution::R512,
///     arrival: SimTime::ZERO,
///     deadline: SimTime::from_secs_f64(2.0),
///     completion: Some(SimTime::from_secs_f64(if met { 1.0 } else { 3.0 })),
///     gpu_seconds: 1.0,
///     steps_executed: 50,
///     sp_degree_step_sum: 50,
///     retries: 0,
///     shed: false,
///     steps_shed: 0,
///     encode_done: None,
///     denoise_done: None,
/// };
/// assert_eq!(sar(&[outcome(true), outcome(false)]), 0.5);
/// ```
pub fn sar(outcomes: &[RequestOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    outcomes.iter().filter(|o| o.met_slo()).count() as f64 / outcomes.len() as f64
}

/// SAR broken down by resolution — the data behind the paper's spider
/// plots (Figures 4b, 7b/c, 8b/c). Resolutions appear in ascending token
/// order.
pub fn sar_by_resolution(outcomes: &[RequestOutcome]) -> BTreeMap<Resolution, f64> {
    let mut met: BTreeMap<Resolution, (usize, usize)> = BTreeMap::new();
    for o in outcomes {
        let e = met.entry(o.resolution).or_insert((0, 0));
        e.1 += 1;
        if o.met_slo() {
            e.0 += 1;
        }
    }
    met.into_iter()
        .map(|(r, (m, n))| (r, m as f64 / n as f64))
        .collect()
}

/// Mean GPU-seconds consumed per request (resource-efficiency companion to
/// SAR).
pub fn mean_gpu_seconds(outcomes: &[RequestOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.gpu_seconds).sum::<f64>() / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_simulator::time::SimTime;
    use tetriserve_simulator::trace::{RequestId, TenantId};

    fn outcome(id: u64, res: Resolution, met: bool) -> RequestOutcome {
        RequestOutcome {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: res,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_secs_f64(2.0),
            completion: Some(SimTime::from_secs_f64(if met { 1.0 } else { 3.0 })),
            gpu_seconds: 2.0,
            steps_executed: 50,
            sp_degree_step_sum: 50,
            retries: 0,
            shed: false,
            steps_shed: 0,
            encode_done: None,
            denoise_done: None,
        }
    }

    #[test]
    fn sar_counts_met_fraction() {
        let outcomes = vec![
            outcome(0, Resolution::R256, true),
            outcome(1, Resolution::R256, true),
            outcome(2, Resolution::R512, false),
            outcome(3, Resolution::R2048, false),
        ];
        assert!((sar(&outcomes) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_perfect() {
        assert_eq!(sar(&[]), 1.0);
        assert!(sar_by_resolution(&[]).is_empty());
        assert_eq!(mean_gpu_seconds(&[]), 0.0);
    }

    #[test]
    fn per_resolution_breakdown() {
        let outcomes = vec![
            outcome(0, Resolution::R256, true),
            outcome(1, Resolution::R256, false),
            outcome(2, Resolution::R2048, true),
        ];
        let by_res = sar_by_resolution(&outcomes);
        assert!((by_res[&Resolution::R256] - 0.5).abs() < 1e-12);
        assert!((by_res[&Resolution::R2048] - 1.0).abs() < 1e-12);
        // Ascending resolution order.
        let keys: Vec<_> = by_res.keys().copied().collect();
        assert_eq!(keys, vec![Resolution::R256, Resolution::R2048]);
    }

    #[test]
    fn unfinished_requests_count_as_missed() {
        let mut o = outcome(0, Resolution::R512, true);
        o.completion = None;
        assert_eq!(sar(&[o]), 0.0);
    }

    #[test]
    fn gpu_seconds_average() {
        let outcomes = vec![
            outcome(0, Resolution::R256, true),
            outcome(1, Resolution::R256, true),
        ];
        assert!((mean_gpu_seconds(&outcomes) - 2.0).abs() < 1e-12);
    }
}
