//! Quality-debt metrics for degraded serving.
//!
//! The degrade ladder (see `tetriserve_core::DegradePolicy`) rescues
//! deadline-infeasible requests by shedding diffusion steps down to a
//! per-class quality floor. Every shed step is *quality debt*: the image
//! was delivered, but with less denoising than requested. This module
//! turns per-request `steps_shed` counts into run-level metrics so the
//! debt is as visible as the SAR it buys.
//!
//! All functions are pure post-processing over [`RequestOutcome`] slices
//! and never mutate anything.

use std::collections::BTreeMap;

use tetriserve_core::RequestOutcome;
use tetriserve_costmodel::{CostTable, Resolution};

/// Total diffusion steps shed across the run — the run's quality debt in
/// steps. Zero on any degradation-free run.
pub fn quality_debt_steps(outcomes: &[RequestOutcome]) -> u64 {
    outcomes.iter().map(|o| u64::from(o.steps_shed)).sum()
}

/// Quality debt weighted by single-GPU step cost: the nominal GPU-seconds
/// of denoising work the ladder removed. Unlike the raw step count this
/// makes debt comparable across resolutions — one shed 2048px step costs
/// ~14× a 256px one.
pub fn quality_debt_step_seconds(outcomes: &[RequestOutcome], costs: &CostTable) -> f64 {
    outcomes
        .iter()
        .filter(|o| o.steps_shed > 0)
        .map(|o| {
            // Debt is denominated in *nominal* single-GPU step-seconds by
            // definition: it measures work not done, not work done slowly.
            // tetrilint: allow(nominal-step-time) -- quality debt is nominal work by definition
            let per_step = costs.step_time(o.resolution, 1, 1).as_secs_f64();
            per_step * f64::from(o.steps_shed)
        })
        .sum()
}

/// Quality debt (in steps) broken down by resolution, ascending token
/// order. Resolutions with no debt are omitted.
pub fn quality_debt_by_resolution(outcomes: &[RequestOutcome]) -> BTreeMap<Resolution, u64> {
    let mut debt: BTreeMap<Resolution, u64> = BTreeMap::new();
    for o in outcomes {
        if o.steps_shed > 0 {
            *debt.entry(o.resolution).or_default() += u64::from(o.steps_shed);
        }
    }
    debt
}

/// Requests the ladder degraded (shed at least one step from), whether or
/// not they went on to complete.
pub fn rescued_requests(outcomes: &[RequestOutcome]) -> usize {
    outcomes.iter().filter(|o| o.was_degraded()).count()
}

/// SLO-met completions that were served below their requested step count.
pub fn degraded_completions(outcomes: &[RequestOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| o.met_slo() && o.was_degraded())
        .count()
}

/// SAR counting only full-quality completions: an SLO met via degradation
/// counts against this metric. On a degradation-free run this equals the
/// plain SAR exactly (bit-identical — both count the same outcomes).
pub fn full_quality_sar(outcomes: &[RequestOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    outcomes
        .iter()
        .filter(|o| o.met_slo() && !o.was_degraded())
        .count() as f64
        / outcomes.len() as f64
}

/// Mean delivered quality: executed steps as a fraction of requested
/// steps, averaged over completed requests. `1.0` means every completion
/// ran at full quality; the per-class floors lower-bound how far this can
/// fall. Shed/failed requests are excluded — they delivered nothing, and
/// their loss is already priced into SAR. Empty (or completion-free)
/// input returns `1.0`.
pub fn mean_delivered_quality(outcomes: &[RequestOutcome]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for o in outcomes.iter().filter(|o| o.completion.is_some()) {
        let requested = u64::from(o.steps_executed) + u64::from(o.steps_shed);
        if requested == 0 {
            continue;
        }
        sum += f64::from(o.steps_executed) / requested as f64;
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sar::sar;
    use tetriserve_simulator::time::SimTime;
    use tetriserve_simulator::trace::{RequestId, TenantId};

    fn costs() -> CostTable {
        use tetriserve_costmodel::{ClusterSpec, DitModel, Profiler};
        Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
    }

    fn outcome(id: u64, res: Resolution, met: bool, shed_steps: u32) -> RequestOutcome {
        let total = 50u32;
        RequestOutcome {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: res,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_secs_f64(10.0),
            completion: Some(SimTime::from_secs_f64(if met { 5.0 } else { 15.0 })),
            gpu_seconds: 1.0,
            steps_executed: total - shed_steps,
            sp_degree_step_sum: u64::from(total - shed_steps),
            retries: 0,
            shed: false,
            steps_shed: shed_steps,
            encode_done: None,
            denoise_done: None,
        }
    }

    #[test]
    fn debt_sums_shed_steps() {
        let outcomes = [
            outcome(0, Resolution::R512, true, 0),
            outcome(1, Resolution::R1024, true, 10),
            outcome(2, Resolution::R2048, false, 15),
        ];
        assert_eq!(quality_debt_steps(&outcomes), 25);
        let by_res = quality_debt_by_resolution(&outcomes);
        assert_eq!(by_res.get(&Resolution::R1024), Some(&10));
        assert_eq!(by_res.get(&Resolution::R2048), Some(&15));
        assert!(!by_res.contains_key(&Resolution::R512));
    }

    #[test]
    fn debt_step_seconds_weights_by_resolution() {
        let costs = costs();
        // Same step count, bigger resolution → strictly more step-seconds.
        let small = [outcome(0, Resolution::R256, true, 10)];
        let large = [outcome(0, Resolution::R2048, true, 10)];
        let s = quality_debt_step_seconds(&small, &costs);
        let l = quality_debt_step_seconds(&large, &costs);
        assert!(s > 0.0);
        assert!(l > s, "R2048 debt {l} must outweigh R256 debt {s}");
    }

    #[test]
    fn degraded_accounting_splits_sar() {
        let outcomes = [
            outcome(0, Resolution::R512, true, 0),  // full-quality hit
            outcome(1, Resolution::R512, true, 5),  // degraded hit
            outcome(2, Resolution::R512, false, 5), // degraded miss
            outcome(3, Resolution::R512, false, 0), // full-quality miss
        ];
        assert_eq!(rescued_requests(&outcomes), 2);
        assert_eq!(degraded_completions(&outcomes), 1);
        assert_eq!(sar(&outcomes), 0.5);
        assert_eq!(full_quality_sar(&outcomes), 0.25);
        // 2 full-quality + 2 at 45/50.
        let want = (1.0 + 0.9 + 0.9 + 1.0) / 4.0;
        assert!((mean_delivered_quality(&outcomes) - want).abs() < 1e-12);
    }

    #[test]
    fn zero_degradation_run_matches_plain_sar_exactly() {
        // On a degradation-free run the quality metrics collapse to the
        // pre-degradation ones bit-for-bit: same filter, same division.
        let outcomes: Vec<RequestOutcome> = (0..7)
            .map(|i| outcome(i, Resolution::R1024, i % 3 != 0, 0))
            .collect();
        assert_eq!(quality_debt_steps(&outcomes), 0);
        assert_eq!(quality_debt_step_seconds(&outcomes, &costs()), 0.0);
        assert!(quality_debt_by_resolution(&outcomes).is_empty());
        assert_eq!(rescued_requests(&outcomes), 0);
        assert_eq!(
            full_quality_sar(&outcomes).to_bits(),
            sar(&outcomes).to_bits()
        );
        assert_eq!(mean_delivered_quality(&outcomes), 1.0);
    }

    #[test]
    fn empty_input_is_perfect() {
        assert_eq!(quality_debt_steps(&[]), 0);
        assert_eq!(full_quality_sar(&[]), 1.0);
        assert_eq!(mean_delivered_quality(&[]), 1.0);
        assert!(quality_debt_by_resolution(&[]).is_empty());
    }
}
