//! Fleet-level aggregation of per-cluster serving reports.
//!
//! A fleet run produces one [`ServeReport`] per cluster plus the routing
//! decisions that shaped them. [`FleetReport`] folds those into the
//! fleet-wide view the paper's production framing calls for: overall SLO
//! attainment (counting fleet-shed requests), goodput over the fleet
//! makespan, per-cluster routing counts and cross-cluster load imbalance.

use tetriserve_core::{RequestOutcome, ServeReport};
use tetriserve_simulator::time::{SimDuration, SimTime};

/// One cluster's contribution to a fleet run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Human-readable cluster label (e.g. `"h100x8-a"`).
    pub name: String,
    /// GPUs in the cluster, for capacity-normalised comparisons.
    pub n_gpus: usize,
    /// Requests the router sent to this cluster at arrival time.
    pub routed: usize,
    /// Requests re-routed *onto* this cluster after another cluster's
    /// outage.
    pub rerouted_in: usize,
    /// Requests the rebalancer migrated *onto* this cluster (each paid
    /// its latent hand-off delay first).
    pub migrated_in: usize,
    /// The cluster's own serving report.
    pub report: ServeReport,
}

/// Upper edges of the hand-off delay histogram buckets, in ascending
/// order; the final bucket is unbounded. See
/// [`FleetReport::handoff_delay_histogram`].
pub const HANDOFF_HISTOGRAM_EDGES: [SimDuration; 4] = [
    SimDuration::from_millis(1),
    SimDuration::from_millis(10),
    SimDuration::from_millis(100),
    SimDuration::from_secs(1),
];

/// The aggregated result of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Router (plus rebalancer, when one is attached) that produced this
    /// run — e.g. `"deadline-aware"` or `"deadline-aware+edf-rebalance"`.
    pub router: String,
    /// Per-cluster reports, in cluster-index order.
    pub clusters: Vec<ClusterReport>,
    /// Requests shed at the fleet level (no cluster was feasible, or none
    /// was up). These never reached any cluster.
    pub fleet_shed: Vec<RequestOutcome>,
    /// Requests re-routed between clusters after outages.
    pub rerouted: usize,
    /// Migrations the rebalancer enacted (periodic ticks plus rescue
    /// moves).
    pub migrations: usize,
    /// Requests the router would have shed that coordinated admission
    /// placed instead.
    pub rescues: usize,
    /// GPU-seconds of already-executed work carried across clusters by
    /// migrations (partially-denoised requests keep their progress).
    pub migrated_gpu_seconds: f64,
    /// Every enacted migration's latent hand-off delay, in enactment
    /// order.
    pub handoff_delays: Vec<SimDuration>,
    /// FNV-1a digest over the routing-decision stream.
    pub routing_digest: u64,
    /// FNV-1a digest over per-request outcomes fleet-wide.
    pub outcome_digest: u64,
    /// FNV-1a digest over the enacted-migration stream
    /// (time, id, from, to, delay per migration); 0 when no rebalancer
    /// ran or it never migrated.
    pub migration_digest: u64,
    /// High-water mark of the fleet-wide live backlog (admitted requests
    /// queued or running across all clusters), sampled at every routing
    /// instant — identical between the serial and parallel drivers.
    pub peak_backlog: usize,
}

impl FleetReport {
    /// Every outcome in the fleet — cluster outcomes plus fleet-level
    /// sheds — sorted by request id.
    pub fn all_outcomes(&self) -> Vec<RequestOutcome> {
        let mut out: Vec<RequestOutcome> = self
            .clusters
            .iter()
            .flat_map(|c| c.report.outcomes.iter().copied())
            .chain(self.fleet_shed.iter().copied())
            .collect();
        out.sort_by_key(|o| o.id);
        out
    }

    /// Fleet-wide SLO attainment: met-SLO requests over *all* requests,
    /// including fleet-shed ones (they count against attainment exactly
    /// like cluster-shed requests do in [`ServeReport::sar`]).
    pub fn sar(&self) -> f64 {
        let outcomes = self.all_outcomes();
        if outcomes.is_empty() {
            return 1.0;
        }
        outcomes.iter().filter(|o| o.met_slo()).count() as f64 / outcomes.len() as f64
    }

    /// The fleet makespan: the latest cluster makespan (all clusters share
    /// one virtual clock).
    pub fn makespan(&self) -> SimTime {
        self.clusters
            .iter()
            .map(|c| c.report.makespan)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Fleet goodput: SLO-met requests per second of fleet makespan.
    pub fn goodput(&self) -> f64 {
        let met = self.all_outcomes().iter().filter(|o| o.met_slo()).count();
        met as f64 / self.makespan().as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Per-tenant slices of the fleet run, in ascending tenant-id order.
    pub fn tenant_summaries(&self) -> Vec<crate::tenancy::TenantSummary> {
        crate::tenancy::tenant_summaries(&self.all_outcomes(), self.makespan())
    }

    /// The minimum per-tenant SAR — the fairness floor.
    pub fn worst_tenant_sar(&self) -> f64 {
        crate::tenancy::worst_tenant_sar(&self.tenant_summaries())
    }

    /// Jain's fairness index over the per-tenant SAR vector.
    pub fn sar_fairness(&self) -> f64 {
        crate::tenancy::sar_fairness(&self.tenant_summaries())
    }

    /// Total requests that entered the fleet.
    pub fn total_requests(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.report.outcomes.len())
            .sum::<usize>()
            + self.fleet_shed.len()
    }

    /// Requests shed anywhere: at the fleet router or by per-cluster
    /// admission control.
    pub fn total_shed(&self) -> usize {
        self.fleet_shed.len()
            + self
                .clusters
                .iter()
                .map(|c| c.report.shed_requests)
                .sum::<usize>()
    }

    /// Histogram of enacted migrations' hand-off delays over the
    /// [`HANDOFF_HISTOGRAM_EDGES`] buckets: counts for `< 1 ms`,
    /// `< 10 ms`, `< 100 ms`, `< 1 s` and a final unbounded `≥ 1 s`
    /// bucket (five counts total, summing to `migrations`).
    pub fn handoff_delay_histogram(&self) -> [usize; 5] {
        let mut buckets = [0usize; 5];
        for &d in &self.handoff_delays {
            let i = HANDOFF_HISTOGRAM_EDGES
                .iter()
                .position(|&edge| d < edge)
                .unwrap_or(HANDOFF_HISTOGRAM_EDGES.len());
            buckets[i] += 1;
        }
        buckets
    }

    /// Cross-cluster load imbalance: the coefficient of variation of
    /// per-cluster busy GPU-seconds *per GPU* (capacity-normalised so an
    /// 8-GPU and a 4-GPU cluster compare fairly). 0 = perfectly balanced.
    pub fn load_imbalance(&self) -> f64 {
        let per_gpu: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| {
                let busy: f64 = c.report.outcomes.iter().map(|o| o.gpu_seconds).sum();
                busy / c.n_gpus.max(1) as f64
            })
            .collect();
        load_imbalance(&per_gpu)
    }
}

/// Coefficient of variation (σ/μ) over per-cluster normalised loads.
/// Returns 0 for fewer than two clusters or an all-idle fleet.
pub fn load_imbalance(loads: &[f64]) -> f64 {
    if loads.len() < 2 {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_equal_loads_is_zero() {
        assert_eq!(load_imbalance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(load_imbalance(&[]), 0.0);
        assert_eq!(
            load_imbalance(&[5.0]),
            0.0,
            "one cluster is trivially balanced"
        );
        assert_eq!(
            load_imbalance(&[0.0, 0.0]),
            0.0,
            "an idle fleet is balanced"
        );
    }

    #[test]
    fn imbalance_grows_with_skew() {
        let mild = load_imbalance(&[4.0, 5.0, 6.0]);
        let severe = load_imbalance(&[0.5, 5.0, 9.5]);
        assert!(mild > 0.0);
        assert!(severe > mild, "{severe} vs {mild}");
    }

    #[test]
    fn imbalance_is_scale_invariant() {
        let a = load_imbalance(&[1.0, 2.0, 3.0]);
        let b = load_imbalance(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn handoff_histogram_buckets_and_conserves_counts() {
        let report = FleetReport {
            router: "test".to_owned(),
            clusters: Vec::new(),
            fleet_shed: Vec::new(),
            rerouted: 0,
            migrations: 6,
            rescues: 0,
            migrated_gpu_seconds: 0.0,
            handoff_delays: vec![
                SimDuration::from_micros(250), // < 1 ms
                SimDuration::from_millis(1),   // edge: lands in < 10 ms
                SimDuration::from_millis(5),   // < 10 ms
                SimDuration::from_millis(50),  // < 100 ms
                SimDuration::from_millis(500), // < 1 s
                SimDuration::from_secs(2),     // ≥ 1 s
            ],
            routing_digest: 0,
            outcome_digest: 0,
            migration_digest: 0,
            peak_backlog: 0,
        };
        let hist = report.handoff_delay_histogram();
        assert_eq!(hist, [1, 2, 1, 1, 1]);
        assert_eq!(hist.iter().sum::<usize>(), report.handoff_delays.len());
    }
}
