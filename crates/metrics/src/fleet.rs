//! Fleet-level aggregation of per-cluster serving reports.
//!
//! A fleet run produces one [`ServeReport`] per cluster plus the routing
//! decisions that shaped them. [`FleetReport`] folds those into the
//! fleet-wide view the paper's production framing calls for: overall SLO
//! attainment (counting fleet-shed requests), goodput over the fleet
//! makespan, per-cluster routing counts and cross-cluster load imbalance.

use tetriserve_core::{RequestOutcome, ServeReport};
use tetriserve_simulator::time::SimTime;

/// One cluster's contribution to a fleet run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Human-readable cluster label (e.g. `"h100x8-a"`).
    pub name: String,
    /// GPUs in the cluster, for capacity-normalised comparisons.
    pub n_gpus: usize,
    /// Requests the router sent to this cluster at arrival time.
    pub routed: usize,
    /// Requests re-routed *onto* this cluster after another cluster's
    /// outage.
    pub rerouted_in: usize,
    /// The cluster's own serving report.
    pub report: ServeReport,
}

/// The aggregated result of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Router that produced this run (e.g. `"deadline-aware"`).
    pub router: String,
    /// Per-cluster reports, in cluster-index order.
    pub clusters: Vec<ClusterReport>,
    /// Requests shed at the fleet level (no cluster was feasible, or none
    /// was up). These never reached any cluster.
    pub fleet_shed: Vec<RequestOutcome>,
    /// Requests re-routed between clusters after outages.
    pub rerouted: usize,
    /// FNV-1a digest over the routing-decision stream.
    pub routing_digest: u64,
    /// FNV-1a digest over per-request outcomes fleet-wide.
    pub outcome_digest: u64,
}

impl FleetReport {
    /// Every outcome in the fleet — cluster outcomes plus fleet-level
    /// sheds — sorted by request id.
    pub fn all_outcomes(&self) -> Vec<RequestOutcome> {
        let mut out: Vec<RequestOutcome> = self
            .clusters
            .iter()
            .flat_map(|c| c.report.outcomes.iter().copied())
            .chain(self.fleet_shed.iter().copied())
            .collect();
        out.sort_by_key(|o| o.id);
        out
    }

    /// Fleet-wide SLO attainment: met-SLO requests over *all* requests,
    /// including fleet-shed ones (they count against attainment exactly
    /// like cluster-shed requests do in [`ServeReport::sar`]).
    pub fn sar(&self) -> f64 {
        let outcomes = self.all_outcomes();
        if outcomes.is_empty() {
            return 1.0;
        }
        outcomes.iter().filter(|o| o.met_slo()).count() as f64 / outcomes.len() as f64
    }

    /// The fleet makespan: the latest cluster makespan (all clusters share
    /// one virtual clock).
    pub fn makespan(&self) -> SimTime {
        self.clusters
            .iter()
            .map(|c| c.report.makespan)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Fleet goodput: SLO-met requests per second of fleet makespan.
    pub fn goodput(&self) -> f64 {
        let met = self.all_outcomes().iter().filter(|o| o.met_slo()).count();
        met as f64 / self.makespan().as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Total requests that entered the fleet.
    pub fn total_requests(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.report.outcomes.len())
            .sum::<usize>()
            + self.fleet_shed.len()
    }

    /// Requests shed anywhere: at the fleet router or by per-cluster
    /// admission control.
    pub fn total_shed(&self) -> usize {
        self.fleet_shed.len()
            + self
                .clusters
                .iter()
                .map(|c| c.report.shed_requests)
                .sum::<usize>()
    }

    /// Cross-cluster load imbalance: the coefficient of variation of
    /// per-cluster busy GPU-seconds *per GPU* (capacity-normalised so an
    /// 8-GPU and a 4-GPU cluster compare fairly). 0 = perfectly balanced.
    pub fn load_imbalance(&self) -> f64 {
        let per_gpu: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| {
                let busy: f64 = c.report.outcomes.iter().map(|o| o.gpu_seconds).sum();
                busy / c.n_gpus.max(1) as f64
            })
            .collect();
        load_imbalance(&per_gpu)
    }
}

/// Coefficient of variation (σ/μ) over per-cluster normalised loads.
/// Returns 0 for fewer than two clusters or an all-idle fleet.
pub fn load_imbalance(loads: &[f64]) -> f64 {
    if loads.len() < 2 {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_equal_loads_is_zero() {
        assert_eq!(load_imbalance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(load_imbalance(&[]), 0.0);
        assert_eq!(
            load_imbalance(&[5.0]),
            0.0,
            "one cluster is trivially balanced"
        );
        assert_eq!(
            load_imbalance(&[0.0, 0.0]),
            0.0,
            "an idle fleet is balanced"
        );
    }

    #[test]
    fn imbalance_grows_with_skew() {
        let mild = load_imbalance(&[4.0, 5.0, 6.0]);
        let severe = load_imbalance(&[0.5, 5.0, 9.5]);
        assert!(mild > 0.0);
        assert!(severe > mild, "{severe} vs {mild}");
    }

    #[test]
    fn imbalance_is_scale_invariant() {
        let a = load_imbalance(&[1.0, 2.0, 3.0]);
        let b = load_imbalance(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
