//! Workspace-level report: human text and a machine-readable JSON form
//! (`tetrilint/v2` — v1 plus a per-violation `chain` field for the
//! interprocedural taint findings) that CI archives next to
//! `BENCH_scheduler.json`.

use crate::rules::{AllowRecord, Violation};

/// Aggregated result of scanning the workspace (or a fixture set).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// All allow annotations, sorted by (file, line).
    pub allows: Vec<AllowRecord>,
}

impl LintReport {
    /// True when no rule fired anywhere.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Annotations no violation matched — stale justifications worth
    /// pruning. Always counted in the report; fatal under `--strict`
    /// (see [`LintReport::enforce_unused_allows`]).
    pub fn unused_allows(&self) -> usize {
        self.allows.iter().filter(|a| !a.used).count()
    }

    /// `--strict` mode: promote every unused allow annotation to an
    /// `unused-allow` violation. An allow that silences nothing is a
    /// stale justification — the code it excused was fixed or deleted —
    /// and leaving it in place pre-authorizes a future regression at
    /// that site. Call after all files are absorbed; re-sorts the report.
    pub fn enforce_unused_allows(&mut self) {
        for a in &self.allows {
            if !a.used {
                self.violations.push(Violation {
                    file: a.file.clone(),
                    line: a.line,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) matched no violation; delete the stale annotation",
                        a.rule
                    ),
                    chain: Vec::new(),
                });
            }
        }
        self.finish();
    }

    /// Merge one file's scan into the report.
    pub fn absorb(&mut self, scan: crate::rules::FileScan) {
        self.files_scanned += 1;
        self.violations.extend(scan.violations);
        self.allows.extend(scan.allows);
    }

    /// Canonical ordering so output is diffable run-to-run.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// `file:line: rule: message` lines (taint findings add an indented
    /// `chain:` line, `entry → … → sink @ file:line`) plus a summary
    /// trailer.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            s.push_str(&format!(
                "{}:{}: {}: {}\n",
                v.file, v.line, v.rule, v.message
            ));
            if !v.chain.is_empty() {
                let hops: Vec<&str> = v.chain.iter().map(|h| h.func.as_str()).collect();
                s.push_str(&format!(
                    "    chain: {} @ {}:{}\n",
                    hops.join(" → "),
                    v.file,
                    v.line
                ));
            }
        }
        s.push_str(&format!(
            "tetrilint: {} violation{}, {} allow{} ({} unused) across {} files\n",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" },
            self.allows.len(),
            if self.allows.len() == 1 { "" } else { "s" },
            self.unused_allows(),
            self.files_scanned,
        ));
        s
    }

    /// The `tetrilint/v2` JSON document (hand-rolled — zero deps).
    /// v2 = v1 plus a `chain` array on taint violations, each hop
    /// `{fn, file, line}` from entry point to sink-bearing function.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"tetrilint/v2\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let mut chain = String::new();
            if !v.chain.is_empty() {
                chain.push_str(", \"chain\": [");
                for (j, h) in v.chain.iter().enumerate() {
                    if j > 0 {
                        chain.push_str(", ");
                    }
                    chain.push_str(&format!(
                        "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                        esc(&h.func),
                        esc(&h.file),
                        h.line
                    ));
                }
                chain.push(']');
            }
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"{}}}",
                esc(&v.file),
                v.line,
                v.rule,
                esc(&v.message),
                chain
            ));
        }
        s.push_str("\n  ],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"file_scope\": {}, \"used\": {}, \"reason\": \"{}\"}}",
                esc(&a.file),
                a.line,
                esc(&a.rule),
                a.file_scope,
                a.used,
                esc(&a.reason)
            ));
        }
        s.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"violations\": {}, \"allows\": {}, \
             \"unused_allows\": {}}}\n}}\n",
            self.violations.len(),
            self.allows.len(),
            self.unused_allows()
        ));
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
