//! Baseline mode: snapshot today's findings, fail only on *new* ones.
//!
//! Large triage efforts land incrementally — a freshly tightened rule can
//! surface dozens of pre-existing sites that are real debt but not *this*
//! PR's debt. `tetrilint --write-baseline lint.baseline` snapshots the
//! current findings as sorted `file\trule\tcount` lines; a later
//! `tetrilint --baseline lint.baseline` run subtracts the snapshot and
//! fails only when a (file, rule) pair exceeds its recorded count.
//!
//! The key is `(file, rule)` with a count, not `(file, line)`: unrelated
//! edits shift line numbers constantly, and a baseline that rots on every
//! rebase gets deleted instead of burned down. Counts still ratchet — fix
//! one of three baselined `unwrap`s and the next regression at that
//! (file, rule) is caught. Within a group, the *highest-line* violations
//! are reported as the new ones (later additions sit below older code
//! more often than not; the choice only affects which site is shown, not
//! whether the excess fails).

use std::collections::BTreeMap;

use crate::report::LintReport;
use crate::rules::Violation;

/// Render the report's findings as a baseline snapshot: sorted
/// `file\trule\tcount` lines, one per (file, rule) pair, trailing
/// newline. Byte-stable for a given report.
pub fn snapshot(report: &LintReport) -> String {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for v in &report.violations {
        *counts.entry((v.file.as_str(), v.rule)).or_insert(0) += 1;
    }
    let mut s = String::new();
    for ((file, rule), n) in counts {
        s.push_str(&format!("{}\t{}\t{}\n", file, rule, n));
    }
    s
}

/// Parse a baseline file back into `(file, rule) → count`. Blank lines
/// and `#` comments are skipped; a malformed line is an error naming it.
pub fn parse(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut out = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(file), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `file\\trule\\tcount`, got `{}`",
                i + 1,
                raw
            ));
        };
        let n: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{}`", i + 1, count))?;
        out.insert((file.to_string(), rule.to_string()), n);
    }
    Ok(out)
}

/// Subtract the baseline: keep only violations in excess of each
/// (file, rule) group's recorded count. Within a group the lowest-line
/// `allowance` violations are forgiven and the rest (highest lines)
/// returned, preserving the report's canonical order.
pub fn diff(report: &LintReport, baseline: &BTreeMap<(String, String), usize>) -> Vec<Violation> {
    // Count per group first so we forgive from the front of each group.
    let mut remaining: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for v in &report.violations {
        let key = (v.file.as_str(), v.rule);
        if !remaining.contains_key(&key) {
            let allowance = baseline
                .get(&(v.file.clone(), v.rule.to_string()))
                .copied()
                .unwrap_or(0);
            remaining.insert(key, allowance);
        }
    }
    let mut out = Vec::new();
    for v in &report.violations {
        let slot = remaining
            .get_mut(&(v.file.as_str(), v.rule))
            .expect("seeded above");
        if *slot > 0 {
            *slot -= 1;
        } else {
            out.push(v.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    fn viol(file: &str, line: u32, rule: &'static str) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
            chain: Vec::new(),
        }
    }

    fn report(violations: Vec<Violation>) -> LintReport {
        let mut r = LintReport {
            files_scanned: 1,
            violations,
            allows: Vec::new(),
        };
        r.finish();
        r
    }

    #[test]
    fn snapshot_groups_and_sorts() {
        let r = report(vec![
            viol("b.rs", 9, "unwrap"),
            viol("a.rs", 3, "unwrap"),
            viol("a.rs", 1, "unwrap"),
            viol("a.rs", 2, "wall-clock"),
        ]);
        assert_eq!(
            snapshot(&r),
            "a.rs\tunwrap\t2\na.rs\twall-clock\t1\nb.rs\tunwrap\t1\n"
        );
    }

    #[test]
    fn parse_round_trips_and_skips_comments() {
        let text = "# written by tetrilint --write-baseline\n\na.rs\tunwrap\t2\n";
        let map = parse(text).unwrap();
        assert_eq!(map.len(), 1);
        assert_eq!(map[&("a.rs".to_string(), "unwrap".to_string())], 2);
        assert!(parse("a.rs only-two-fields\n").is_err());
        assert!(parse("a.rs\tunwrap\tmany\n").is_err());
    }

    #[test]
    fn diff_forgives_up_to_count_keeps_excess() {
        let r = report(vec![
            viol("a.rs", 1, "unwrap"),
            viol("a.rs", 5, "unwrap"),
            viol("a.rs", 9, "unwrap"),
        ]);
        let base = parse("a.rs\tunwrap\t2\n").unwrap();
        let new = diff(&r, &base);
        // Two forgiven (lowest lines), the excess one reported.
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 9);
    }

    #[test]
    fn diff_flags_unlisted_groups_entirely() {
        let r = report(vec![viol("a.rs", 1, "unwrap"), viol("b.rs", 2, "unwrap")]);
        let base = parse("a.rs\tunwrap\t1\n").unwrap();
        let new = diff(&r, &base);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].file, "b.rs");
    }

    #[test]
    fn diff_is_empty_when_baseline_covers_everything() {
        let r = report(vec![viol("a.rs", 1, "unwrap")]);
        let base = parse("a.rs\tunwrap\t5\n").unwrap();
        assert!(diff(&r, &base).is_empty());
        // A shrunken workspace never fails against a generous baseline.
        assert!(diff(&report(Vec::new()), &base).is_empty());
    }
}
