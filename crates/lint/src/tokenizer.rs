//! A minimal hand-rolled Rust lexer.
//!
//! The container is offline, so `tetrilint` cannot lean on `syn` or
//! `clippy-driver`; instead this module turns a source file into a flat
//! token stream with comments and string/char literals *removed* (their
//! contents must never trigger a rule) while line numbers are preserved
//! for reporting. It is not a full Rust grammar — it only needs to be
//! precise about the things that would cause false positives:
//!
//! * line comments (`//`), nested block comments (`/* /* */ */`)
//! * string literals, including raw (`r#"…"#`), byte (`b"…"`) and
//!   raw-byte (`br#"…"#`) forms, with escape handling
//! * char literals vs. lifetimes (`'a'` vs. `'a`)
//! * raw identifiers (`r#type`)
//! * numeric literals, classified int vs. float (so `0..n` is not a
//!   float and `1.0` is), with `_` separators, exponents and suffixes
//! * multi-char operators that matter to the rules (`==`, `!=`, `::`,
//!   `..`, `..=`) merged into single tokens
//!
//! `tetrilint: allow` annotations live in line comments, so the lexer is
//! also where they are harvested (see [`Annotation`]).

/// Token classification. String and char literals are dropped entirely —
/// no rule should ever fire on their contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including `0x…`, `0b…`, `0o…`).
    Int,
    /// Float literal (`1.0`, `1e6`, `1f64`, `1.`).
    Float,
    /// Punctuation / operator (possibly multi-char: `==`, `::`, `..`).
    Punct,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Verbatim text (for `Punct`, the merged operator).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Scope of a `tetrilint: allow` annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// `allow(rule)` — silences the annotated line (trailing comment) or
    /// the next line containing code (standalone comment).
    Line,
    /// `allow-file(rule)` — silences the rule for the whole file.
    File,
}

/// A well-formed `// tetrilint: allow[-file](<rule>) -- <reason>`.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Line the comment sits on.
    pub line: u32,
    /// Line vs. file scope.
    pub scope: AllowScope,
    /// Rule name inside the parentheses (validated by the rule engine).
    pub rule: String,
    /// The justification after `--` (guaranteed non-empty).
    pub reason: String,
}

/// A comment that mentions `tetrilint` but does not parse — surfaced as a
/// `bad-annotation` violation so typos cannot silently disable a rule.
#[derive(Debug, Clone)]
pub struct Malformed {
    /// Line the comment sits on.
    pub line: u32,
    /// Human-readable description of what is wrong.
    pub message: String,
}

/// Output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order (comments/strings stripped).
    pub tokens: Vec<Tok>,
    /// Well-formed allow annotations.
    pub annotations: Vec<Annotation>,
    /// Comments that mention `tetrilint` but failed to parse.
    pub malformed: Vec<Malformed>,
}

/// Lex `src` into tokens plus harvested annotations.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        *self.b.get(self.i + off).unwrap_or(&0)
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(0, false),
                b'\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    /// `// …` — also the only place annotations are recognised.
    fn line_comment(&mut self) {
        let start = self.i + 2;
        let mut end = start;
        while end < self.b.len() && self.b[end] != b'\n' {
            end += 1;
        }
        let body = String::from_utf8_lossy(&self.b[start..end]);
        self.harvest_annotation(body.trim());
        self.i = end;
    }

    /// `/* … */` with nesting; annotations are *not* recognised here (the
    /// grammar is line-comment only, documented in DESIGN.md §11).
    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    fn harvest_annotation(&mut self, body: &str) {
        if !body.contains("tetrilint") {
            return;
        }
        let line = self.line;
        match parse_annotation(body) {
            Ok(Some(ann)) => self.out.annotations.push(Annotation {
                line,
                scope: ann.0,
                rule: ann.1,
                reason: ann.2,
            }),
            Ok(None) => {} // prose that merely mentions the tool by name
            Err(msg) => self.out.malformed.push(Malformed { line, message: msg }),
        }
    }

    /// String literal body. `raw` disables escape processing (raw strings
    /// treat `\` as a plain byte: `r"\"` is complete); `hashes` is the
    /// number of `#` marks a raw string's closing quote must carry.
    fn string(&mut self, hashes: usize, raw: bool) {
        self.i += 1; // opening quote
        if !raw {
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\\' => self.i += 2,
                    b'"' => {
                        self.i += 1;
                        return;
                    }
                    b'\n' => {
                        self.line += 1;
                        self.i += 1;
                    }
                    _ => self.i += 1,
                }
            }
        } else {
            // Raw string: ends at `"` followed by `hashes` hash marks —
            // backslashes and lone quotes (fewer trailing `#`) are content.
            while self.i < self.b.len() {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                    self.i += 1;
                } else if self.b[self.i] == b'"'
                    && self.b[self.i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    self.i += 1 + hashes;
                    return;
                } else {
                    self.i += 1;
                }
            }
        }
    }

    /// `'a'` / `'\n'` / `b'x'` are literals (dropped); `'a` is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1) == b'\\' {
            // Escaped char literal: skip `'\`, the escape head, then scan
            // to the closing quote (handles `\u{…}`).
            self.i += 3;
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            self.i += 1;
            return;
        }
        if is_ident_start(self.peek(1)) {
            // Could be `'a'` (char) or `'a` (lifetime): read the ident run
            // and look for an immediate closing quote.
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_cont(self.b[j]) {
                j += 1;
            }
            if j < self.b.len() && self.b[j] == b'\'' {
                self.i = j + 1; // char literal like 'a'
            } else {
                let text = String::from_utf8_lossy(&self.b[self.i..j]).into_owned();
                self.push(TokKind::Lifetime, text, line);
                self.i = j;
            }
            return;
        }
        // Non-ident char literal (`' '`, `'%'`, possibly multi-byte UTF-8):
        // scan to the closing quote.
        self.i += 1;
        while self.i < self.b.len() && self.b[self.i] != b'\'' {
            if self.b[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        self.i += 1;
    }

    /// Identifier, or one of the literal prefixes `r" b" br" b' r#"` or a
    /// raw identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = self.i;
        while j < self.b.len() && is_ident_cont(self.b[j]) {
            j += 1;
        }
        let ident = &self.b[start..j];
        let next = *self.b.get(j).unwrap_or(&0);
        match (ident, next) {
            (b"r" | b"br", b'"') => {
                // Hash-less raw (byte) string: no escapes, ends at `"`.
                self.i = j;
                self.string(0, true);
            }
            (b"b", b'"') => {
                self.i = j;
                self.string(0, false);
            }
            (b"r" | b"br", b'#') => {
                let mut hashes = 0;
                let mut k = j;
                while *self.b.get(k).unwrap_or(&0) == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if *self.b.get(k).unwrap_or(&0) == b'"' {
                    self.i = k;
                    self.string(hashes, true);
                } else {
                    // Raw identifier `r#name`: emit the name itself.
                    self.i = k;
                    let mut m = self.i;
                    while m < self.b.len() && is_ident_cont(self.b[m]) {
                        m += 1;
                    }
                    let text = String::from_utf8_lossy(&self.b[self.i..m]).into_owned();
                    self.push(TokKind::Ident, text, line);
                    self.i = m;
                }
            }
            (b"b", b'\'') => {
                self.i = j;
                self.char_or_lifetime();
            }
            _ => {
                let text = String::from_utf8_lossy(ident).into_owned();
                self.push(TokKind::Ident, text, line);
                self.i = j;
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut is_float = false;
        if self.b[self.i] == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
        } else {
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            // Fractional part — but `0..n` is a range and `1.max` would be
            // a field/method position, neither makes this a float.
            if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
                is_float = true;
                self.i += 1;
                while self.i < self.b.len()
                    && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                {
                    self.i += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E') {
                let sign = matches!(self.peek(1), b'+' | b'-') as usize;
                if self.peek(1 + sign).is_ascii_digit() {
                    is_float = true;
                    self.i += 2 + sign;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
            }
            // Type suffix (`1f64` is a float, `1u32` an int).
            if is_ident_start(self.peek(0)) {
                if self.peek(0) == b'f' {
                    is_float = true;
                }
                while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
                    self.i += 1;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let two: &[u8] = &[self.peek(0), self.peek(1)];
        const TWO_CHAR: &[&[u8]] = &[
            b"==", b"!=", b"::", b"..", b"->", b"=>", b"<=", b">=", b"&&", b"||", b"+=", b"-=",
            b"*=", b"/=", b"%=", b"^=", b"|=", b"&=",
        ];
        if TWO_CHAR.contains(&two) {
            let mut text = String::from_utf8_lossy(two).into_owned();
            self.i += 2;
            if text == ".." && self.peek(0) == b'=' {
                text.push('=');
                self.i += 1;
            }
            self.push(TokKind::Punct, text, line);
        } else {
            let text = (self.b[self.i] as char).to_string();
            self.i += 1;
            self.push(TokKind::Punct, text, line);
        }
    }
}

/// Parse the body of a line comment that mentions `tetrilint`.
///
/// Grammar (DESIGN.md §11):
///
/// ```text
/// tetrilint: allow(<rule>) -- <reason>
/// tetrilint: allow-file(<rule>) -- <reason>
/// ```
///
/// Returns `Ok(None)` for prose that mentions the tool without a colon
/// directive, `Err` for a directive that does not parse.
#[allow(clippy::type_complexity)]
fn parse_annotation(body: &str) -> Result<Option<(AllowScope, String, String)>, String> {
    let Some(rest) = body.strip_prefix("tetrilint:") else {
        if body.starts_with("tetrilint") {
            return Err("expected `tetrilint:` (missing colon)".to_string());
        }
        return Ok(None); // e.g. doc prose: "… run tetrilint to check …"
    };
    let rest = rest.trim_start();
    let (scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (AllowScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (AllowScope::Line, r)
    } else {
        return Err("expected `allow(<rule>)` or `allow-file(<rule>)`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unterminated `allow(` — missing `)`".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || !rule.bytes().all(|c| c.is_ascii_lowercase() || c == b'-') {
        return Err(format!(
            "`{rule}` is not a rule name (lowercase-with-dashes)"
        ));
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing ` -- <reason>` justification".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason after `--`".to_string());
    }
    Ok(Some((scope, rule.to_string(), reason.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn raw_string_backslash_is_not_an_escape() {
        // `r"\"` is a complete raw string holding one backslash; the old
        // escape-processing path swallowed the closing quote and ate the
        // rest of the file.
        let src = r#"fn t() { let sep = r"\"; after() }"#;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
        assert!(!ids.contains(&"sep_contents".to_string()));
        // Windows-path flavor: trailing backslash directly before the quote.
        let src = "let p = r\"C:\\dir\\\"; trailing()";
        assert!(idents(src).contains(&"trailing".to_string()));
    }

    #[test]
    fn byte_strings_are_dropped_with_escapes() {
        // `b"…"` processes escapes like an ordinary string: `\"` must not
        // terminate it, and its contents never become tokens.
        let src = r#"fn t() { let b = b"quote \" inside Instant"; tail() }"#;
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_byte_strings_and_hashed_raw_strings() {
        // `br#"…"#` ends only at `"#` with the right hash count; interior
        // `"` and `"#`-with-too-few-hashes are content.
        let src = "fn t() { let s = br##\"has \"# inside\"##; next() }";
        let ids = idents(src);
        assert!(ids.contains(&"next".to_string()), "{ids:?}");
        assert!(!ids.contains(&"inside".to_string()), "{ids:?}");
        let src = "fn t() { let s = r#\"plain \" quote\"#; follow() }";
        assert!(idents(src).contains(&"follow".to_string()));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "fn a() {} /* outer /* inner /* deep */ */ still comment */ fn b() {}";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()) && ids.contains(&"b".to_string()));
        assert!(!ids.contains(&"still".to_string()), "{ids:?}");
        // Unterminated comment consumes to EOF without panicking.
        let ids = idents("fn a() {} /* /* unclosed */");
        assert_eq!(ids, vec!["fn", "a"]);
    }

    #[test]
    fn raw_strings_never_emit_annotations() {
        let src = "let s = r#\"// tetrilint: allow(unwrap) -- not real\"#;";
        let lexed = lex(src);
        assert!(lexed.annotations.is_empty());
        assert!(lexed.malformed.is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_raw_strings() {
        let src = "let s = r#\"line1\nline2\nline3\"#;\nfn after() {}";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }
}
