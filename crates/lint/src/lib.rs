//! # tetriserve-lint
//!
//! `tetrilint`: a pure-std, zero-dependency static analyzer that holds the
//! workspace to the invariants the reproduction depends on — determinism
//! (no wall-clock, no ambient RNG, no unordered map iteration in decision
//! paths), panic discipline in the per-round hot path, and float
//! discipline (no `==` on floats, `total_cmp` over
//! `partial_cmp().unwrap()`).
//!
//! The container the repo builds in is offline, so there is no `syn` and
//! no `clippy-driver` to lean on; [`tokenizer`] is a small hand-rolled
//! lexer that strips comments and string literals (so their contents can
//! never trip a rule) and [`rules`] is a per-file pattern engine over the
//! resulting token stream. Legitimate exceptions are silenced — and
//! counted — via inline annotations:
//!
//! ```text
//! // tetrilint: allow(wall-clock) -- host control-plane cost measurement
//! // tetrilint: allow-file(slice-index) -- DP buffers sized at entry
//! ```
//!
//! See DESIGN.md §11 for the rule catalogue and the annotation grammar.

#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod parser;
pub mod report;
pub mod rules;
mod taint;
pub mod tokenizer;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::LintReport;
use rules::FileScan;

/// Scan one source string under a workspace-relative label (the label
/// drives path-scoped rules: decision-path crates, hot-path basenames).
/// Per-file rules only — the interprocedural passes need the whole
/// workspace; see [`analyze_sources`].
pub fn scan_source(file_label: &str, source: &str) -> FileScan {
    rules::check(file_label, &tokenizer::lex(source))
}

/// Full analysis over a set of labelled sources: per-file rules, then
/// the workspace symbol graph and the three interprocedural taint passes
/// (DESIGN.md §16). This is `scan_workspace` minus the filesystem, so
/// fixtures can exercise cross-file chains in-memory.
pub fn analyze_sources(files: &[(String, String)]) -> LintReport {
    let lexed: Vec<(String, tokenizer::Lexed)> = files
        .iter()
        .map(|(label, src)| (label.replace('\\', "/"), tokenizer::lex(src)))
        .collect();

    // Per-file pass, keeping each file's allow table alive for taint.
    let mut allows: Vec<rules::Allows> = lexed
        .iter()
        .map(|(norm, lx)| rules::Allows::new(lx, norm))
        .collect();
    let mut violations: Vec<rules::Violation> = Vec::new();
    for ((norm, lx), al) in lexed.iter().zip(allows.iter_mut()) {
        violations.extend(rules::check_file(norm, lx, al));
    }

    // Workspace pass: items → symbol graph → taint chains.
    let items: Vec<parser::FileItems> = lexed
        .iter()
        .map(|(norm, lx)| parser::parse(norm, lx))
        .collect();
    let wg = graph::build(&items);
    violations.extend(taint::run(&wg, &lexed, &mut allows));

    let mut rep = LintReport {
        files_scanned: lexed.len(),
        violations,
        allows: allows.into_iter().flat_map(|a| a.into_records()).collect(),
    };
    rep.finish();
    rep
}

/// Scan every `.rs` file under `<root>/src` and `<root>/crates/*/src`,
/// running both the per-file rules and the interprocedural taint passes.
///
/// Files are visited in sorted path order so the report is byte-stable —
/// the linter holds itself to the determinism bar it enforces.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    Ok(analyze_sources(&workspace_sources(root)?))
}

/// Collect the workspace's labelled sources — every `.rs` file under
/// `<root>/src` and `<root>/crates/*/src` in sorted path order, each
/// paired with its workspace-relative label. This is the exact input
/// [`scan_workspace`] analyzes; the graph self-check test reuses it to
/// assert the symbol graph covers every file the linter sees.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let bytes = fs::read(path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((label, String::from_utf8_lossy(&bytes).into_owned()));
    }
    Ok(sources)
}

/// Recursively gather `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand: scan a fixture under the given label and return the
    /// fired rule names in order.
    fn fired(label: &str, src: &str) -> Vec<&'static str> {
        scan_source(label, src)
            .violations
            .iter()
            .map(|v| v.rule)
            .collect()
    }

    const CORE: &str = "crates/core/src/policy.rs"; // decision path, not hot
    const HOT: &str = "crates/core/src/dp.rs"; // decision path + hot path
    const BENCH: &str = "crates/bench/src/util.rs"; // neither

    // ---- wall-clock ----------------------------------------------------

    #[test]
    fn wall_clock_bad() {
        let src = "fn t() { let s = std::time::Instant::now(); let _ = s; }";
        assert_eq!(fired(BENCH, src), vec!["wall-clock"]);
        let src = "fn t() -> std::time::SystemTime { std::time::SystemTime::now() }";
        assert!(fired(BENCH, src).iter().all(|&r| r == "wall-clock"));
    }

    #[test]
    fn wall_clock_good() {
        // Importing the type or naming it in strings/comments is fine.
        let src = "use std::time::Instant;\n// Instant::now is banned\nfn t(x: &str) -> bool { x == \"Instant::now\" }";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn wall_clock_allowed_inline() {
        let src = "fn t() {\n    // tetrilint: allow(wall-clock) -- host-side measurement\n    let s = std::time::Instant::now();\n    let _ = s;\n}";
        let scan = scan_source(BENCH, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.allows.len(), 1);
        assert!(scan.allows[0].used);
    }

    #[test]
    fn wall_clock_allowed_trailing() {
        let src = "fn t() {\n    let s = std::time::Instant::now(); // tetrilint: allow(wall-clock) -- timeout guard\n    let _ = s;\n}";
        let scan = scan_source(BENCH, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- ambient-rng ---------------------------------------------------

    #[test]
    fn ambient_rng_bad() {
        let src = "fn t() -> u64 { let mut r = rand::thread_rng(); r.gen() }";
        assert_eq!(fired(BENCH, src), vec!["ambient-rng"]);
    }

    #[test]
    fn ambient_rng_good() {
        let src = "fn t(rng: &mut SimRng) -> u64 { rng.next_u64() }";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    // ---- unordered-iter ------------------------------------------------

    #[test]
    fn unordered_iter_bad_method() {
        let src = "use std::collections::HashMap;\nfn t() {\n    let groups: HashMap<u64, Vec<usize>> = HashMap::new();\n    for idxs in groups.into_values() { let _ = idxs; }\n}";
        assert_eq!(fired(CORE, src), vec!["unordered-iter"]);
    }

    #[test]
    fn unordered_iter_bad_for_loop() {
        let src =
            "fn t(live: &std::collections::HashSet<u64>) {\n    for id in live { let _ = id; }\n}";
        // Binding comes from the `live: &HashSet` param ascription.
        let src2 = src.replace("std::collections::HashSet<u64>", "HashSet<u64>");
        assert_eq!(fired(CORE, &src2), vec!["unordered-iter"]);
        assert_eq!(fired(CORE, src), vec!["unordered-iter"]);
    }

    #[test]
    fn unordered_iter_good_btreemap() {
        let src = "use std::collections::BTreeMap;\nfn t() {\n    let groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();\n    for idxs in groups.into_values() { let _ = idxs; }\n}";
        assert_eq!(fired(CORE, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_iter_good_lookup_only() {
        // get/insert/remove never observe hash order.
        let src = "use std::collections::HashMap;\nfn t(m: &mut HashMap<u64, u64>) -> Option<u64> {\n    m.insert(1, 2);\n    m.remove(&3);\n    m.get(&1).copied()\n}";
        assert_eq!(fired(CORE, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_iter_not_in_decision_path() {
        // Outside decision paths the *iteration* is legal, but collecting
        // hash order into a Vec still fires `unordered-collect`; inside a
        // decision path the same line fires `unordered-iter` only (one
        // site, one rule — the collect hit defers).
        let src = "use std::collections::HashMap;\nfn t(m: &HashMap<u64, u64>) -> Vec<u64> {\n    m.values().copied().collect()\n}";
        assert_eq!(fired(BENCH, src), vec!["unordered-collect"]);
        assert_eq!(fired(CORE, src), vec!["unordered-iter"]);
    }

    // ---- unordered-collect ---------------------------------------------

    #[test]
    fn unordered_collect_bad_let_binding() {
        let src = "use std::collections::HashMap;\nfn t(m: &HashMap<u64, u64>) {\n    let ids: Vec<u64> = m.keys().copied().collect();\n    let _ = ids;\n}";
        assert_eq!(fired(BENCH, src), vec!["unordered-collect"]);
    }

    #[test]
    fn unordered_collect_bad_turbofish_tail() {
        let src = "use std::collections::HashSet;\nfn t(s: &HashSet<u64>) -> Vec<u64> {\n    s.iter().copied().collect::<Vec<u64>>()\n}";
        assert_eq!(fired(BENCH, src), vec!["unordered-collect"]);
    }

    #[test]
    fn unordered_collect_good_sorted_after() {
        // Collect-and-sort is the sanctioned idiom.
        let src = "use std::collections::HashMap;\nfn t(m: &HashMap<u64, u64>) -> Vec<u64> {\n    let mut ids: Vec<u64> = m.keys().copied().collect();\n    ids.sort_unstable();\n    ids\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_collect_good_btree_and_hash_targets() {
        // A BTree target re-sorts; a hash target materializes no order.
        let src = "use std::collections::{BTreeMap, HashMap, HashSet};\nfn t(m: &HashMap<u64, u64>) -> usize {\n    let sorted: BTreeMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();\n    let live: HashSet<u64> = m.keys().copied().collect();\n    sorted.len() + live.len()\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_collect_good_point_access() {
        let src = "use std::collections::HashMap;\nfn t(m: &HashMap<u64, u64>) -> Vec<u64> {\n    vec![m.get(&1).copied().unwrap_or(0)]\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_collect_allowed_inline() {
        let src = "use std::collections::HashMap;\nfn t(m: &HashMap<u64, u64>) -> Vec<u64> {\n    // tetrilint: allow(unordered-collect) -- order re-established by caller\n    m.keys().copied().collect()\n}";
        let scan = scan_source(BENCH, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- strict mode ---------------------------------------------------

    #[test]
    fn strict_promotes_unused_allows_to_violations() {
        let src = "fn t() {\n    // tetrilint: allow(wall-clock) -- stale: the clock read was removed\n    let x = 1;\n    let _ = x;\n}";
        let mut rep = report::LintReport::default();
        rep.absorb(scan_source(BENCH, src));
        rep.finish();
        // Lenient: the unused allow is counted but not fatal.
        assert!(rep.is_clean());
        assert_eq!(rep.unused_allows(), 1);
        // Strict: it becomes an `unused-allow` violation at the
        // annotation's own line.
        rep.enforce_unused_allows();
        assert!(!rep.is_clean());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "unused-allow");
        assert_eq!(rep.violations[0].line, 2);
        assert!(
            rep.render_text().contains("unused-allow"),
            "{}",
            rep.render_text()
        );
    }

    #[test]
    fn strict_is_a_no_op_when_every_allow_is_used() {
        let src = "fn t() {\n    // tetrilint: allow(wall-clock) -- host-side measurement\n    let s = std::time::Instant::now();\n    let _ = s;\n}";
        let mut rep = report::LintReport::default();
        rep.absorb(scan_source(BENCH, src));
        rep.finish();
        rep.enforce_unused_allows();
        assert!(rep.is_clean(), "{:?}", rep.violations);
    }

    // ---- unwrap --------------------------------------------------------

    #[test]
    fn unwrap_bad_in_hot_path() {
        let src = "fn t(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(fired(HOT, src), vec!["unwrap"]);
        let src = "fn t(x: Option<u32>) -> u32 { x.expect(\"set\") }";
        assert_eq!(fired(HOT, src), vec!["unwrap"]);
    }

    #[test]
    fn unwrap_good_outside_hot_path_and_in_tests() {
        let src = "fn t(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(fired(CORE, src), Vec::<&str>::new());
        // #[cfg(test)] items are skipped even in hot-path files.
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn u() { Some(1u32).unwrap(); }\n}";
        assert_eq!(fired(HOT, src), Vec::<&str>::new());
    }

    #[test]
    fn unwrap_allowed_with_reason() {
        let src = "fn t(x: Option<u32>) -> u32 {\n    // tetrilint: allow(unwrap) -- tracker invariant: id is always present\n    x.expect(\"tracked\")\n}";
        let scan = scan_source(HOT, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- slice-index ---------------------------------------------------

    #[test]
    fn slice_index_bad_in_hot_path() {
        let src = "fn t(xs: &[u32], i: usize) -> u32 { xs[i] }";
        assert_eq!(fired(HOT, src), vec!["slice-index"]);
    }

    #[test]
    fn slice_index_good_forms() {
        // get(), macros, attributes and array types must not trip it.
        let src = "#[derive(Clone)]\nstruct S { a: [u64; 4] }\nfn t(xs: &[u32], i: usize) -> Option<u32> {\n    let v = vec![0u32; 4];\n    let _ = v;\n    xs.get(i).copied()\n}";
        assert_eq!(fired(HOT, src), Vec::<&str>::new());
    }

    #[test]
    fn slice_index_file_scope_allow() {
        let src = "// tetrilint: allow-file(slice-index) -- buffers sized to capacity at entry\nfn t(xs: &[u32]) -> u32 { xs[0] + xs[1] }";
        let scan = scan_source(HOT, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used && scan.allows[0].file_scope);
    }

    // ---- sim-time-monotonicity ----------------------------------------

    #[test]
    fn sim_time_monotonicity_bad_minuend() {
        let src = "fn t(a: SimTime, n: u64) -> u64 { a.as_micros() - n }";
        assert_eq!(fired(BENCH, src), vec!["sim-time-monotonicity"]);
    }

    #[test]
    fn sim_time_monotonicity_bad_subtrahend() {
        let src = "fn t(a: SimTime, n: u64) -> u64 { n - a.as_micros() }";
        assert_eq!(fired(BENCH, src), vec!["sim-time-monotonicity"]);
        // Chained receivers are still caught.
        let src = "fn t(s: &Server, n: u64) -> u64 { n - s.cursor.as_micros() }";
        assert_eq!(fired(BENCH, src), vec!["sim-time-monotonicity"]);
    }

    #[test]
    fn sim_time_monotonicity_good_forms() {
        // Additions, saturating/checked arithmetic and comparisons on the
        // raw micros never underflow; `-` nowhere near as_micros is fine.
        let src = "fn t(a: SimTime, b: SimTime, n: u64) -> u64 {\n    let x = a.as_micros() + n;\n    let y = a.as_micros().saturating_sub(n);\n    let z = b.saturating_since(a).as_micros();\n    let w = n - 1;\n    x + y + z + w\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn sim_time_monotonicity_allowed_with_reason() {
        let src = "fn t(at: SimTime) -> u64 {\n    // tetrilint: allow(sim-time-monotonicity) -- at != ZERO checked above\n    at.as_micros() - 1\n}";
        let scan = scan_source(BENCH, src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- nominal-step-time ---------------------------------------------

    #[test]
    fn nominal_step_time_fires_in_speed_aware_modules() {
        let src = "fn t(c: &CostTable) -> SimDuration { c.step_time(res, 8, 1) }";
        assert_eq!(
            fired("crates/core/src/feasibility.rs", src),
            vec!["nominal-step-time"]
        );
        let src = "fn t(c: &CostTable) -> SimDuration { c.t_min(res) }";
        assert_eq!(
            fired("crates/core/src/scheduler.rs", src),
            vec!["nominal-step-time"]
        );
    }

    #[test]
    fn nominal_step_time_scoped_to_speed_aware_files() {
        // dp.rs packs pre-sized options and never reads the cost table
        // directly; bench code measures whatever it likes.
        let src = "fn t(c: &CostTable) -> SimDuration { c.step_time(res, 8, 1) }";
        assert_eq!(fired(HOT, src), Vec::<&str>::new());
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
        // Definitions and non-method mentions are not reads.
        let src = "fn step_time(res: Resolution) -> SimDuration { todo(res) }";
        assert_eq!(fired("crates/core/src/policy.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn nominal_step_time_allowed_with_reason() {
        let src = "fn t(c: &CostTable) -> f64 {\n    // tetrilint: allow(nominal-step-time) -- demand side is nominal by convention\n    c.step_time(res, 1, 1).as_secs_f64()\n}";
        let scan = scan_source("crates/core/src/feasibility.rs", src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- units-of-measure ----------------------------------------------

    #[test]
    fn units_of_measure_bad_mixed_statement() {
        // Integer microseconds and float seconds priced into one value.
        let src = "fn t(d: SimDuration, s: SimDuration) -> f64 {\n    d.as_micros() as f64 * s.as_secs_f64()\n}";
        assert_eq!(
            fired("crates/core/src/feasibility.rs", src),
            vec!["units-of-measure"]
        );
        // The constructor direction is just as wrong.
        let src = "fn t(d: SimDuration) -> SimDuration {\n    SimDuration::from_secs_f64(d.as_micros() as f64)\n}";
        assert_eq!(
            fired("crates/costmodel/src/steptime.rs", src),
            vec!["units-of-measure"]
        );
    }

    #[test]
    fn units_of_measure_good_single_unit_statements() {
        // One unit per statement is the sanctioned shape, and the scope
        // is the three units-sensitive basenames only.
        let src = "fn t(d: SimDuration, s: SimDuration) -> f64 {\n    let micros = d.as_micros();\n    let secs = s.as_secs_f64();\n    micros as f64 / 1e6 + secs\n}";
        assert_eq!(
            fired("crates/costmodel/src/interconnect.rs", src),
            Vec::<&str>::new()
        );
        let src = "fn t(d: SimDuration, s: SimDuration) -> f64 {\n    d.as_micros() as f64 * s.as_secs_f64()\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
        assert_eq!(fired(CORE, src), Vec::<&str>::new());
    }

    #[test]
    fn units_of_measure_allowed_with_reason() {
        let src = "fn t(d: SimDuration) -> f64 {\n    // tetrilint: allow(units-of-measure) -- result is µs², fed to the µs-domain digest\n    d.as_micros() as f64 * d.as_secs_f64() * 1e6\n}";
        let scan = scan_source("crates/core/src/feasibility.rs", src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert!(scan.allows[0].used);
    }

    // ---- unordered-iter: inferred bindings -----------------------------

    #[test]
    fn unordered_iter_bad_inferred_let_binding() {
        // No type ascription anywhere: the binding is inferred from the
        // `HashMap::new()` initializer.
        let src = "use std::collections::HashMap;\nfn t() {\n    let mut groups = HashMap::new();\n    groups.insert(1u64, 2u64);\n    for v in groups.values() { let _ = v; }\n}";
        assert_eq!(fired(CORE, src), vec!["unordered-iter"]);
        // Same for HashSet::with_capacity.
        let src = "use std::collections::HashSet;\nfn t(n: usize) {\n    let live = HashSet::with_capacity(n);\n    for id in live.iter() { let _ = id; }\n}";
        assert_eq!(fired(CORE, src), vec!["unordered-iter"]);
    }

    #[test]
    fn unordered_iter_good_inferred_btree_binding() {
        let src = "use std::collections::BTreeMap;\nfn t() {\n    let mut groups = BTreeMap::new();\n    groups.insert(1u64, 2u64);\n    for v in groups.values() { let _ = v; }\n}";
        assert_eq!(fired(CORE, src), Vec::<&str>::new());
    }

    #[test]
    fn unordered_collect_bad_inferred_binding() {
        // The inferred binding set feeds unordered-collect too.
        let src = "use std::collections::HashMap;\nfn t() -> Vec<u64> {\n    let mut m = HashMap::new();\n    m.insert(1u64, 2u64);\n    let ids: Vec<u64> = m.keys().copied().collect();\n    ids\n}";
        assert_eq!(fired(BENCH, src), vec!["unordered-collect"]);
    }

    // ---- float-eq ------------------------------------------------------

    #[test]
    fn float_eq_bad() {
        let src = "fn t(x: f64) -> bool { x == 1.0 }";
        assert_eq!(fired(BENCH, src), vec!["float-eq"]);
        let src = "fn t(x: f64, y: u64) -> bool { x != y as f64 }";
        assert_eq!(fired(BENCH, src), vec!["float-eq"]);
        let src = "fn t(x: f64) -> bool { 0.5 == x }";
        assert_eq!(fired(BENCH, src), vec!["float-eq"]);
    }

    #[test]
    fn float_eq_good() {
        // Integer comparisons and ranges must not trip it.
        let src = "fn t(x: u64) -> bool { let mut n = 0u64; for i in 0..x { n += i; } n == 10 }";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    // ---- partial-cmp-unwrap -------------------------------------------

    #[test]
    fn partial_cmp_unwrap_bad() {
        let src = "fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(fired(BENCH, src), vec!["partial-cmp-unwrap"]);
        let src =
            "fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }";
        assert_eq!(fired(BENCH, src), vec!["partial-cmp-unwrap"]);
    }

    #[test]
    fn partial_cmp_unwrap_good() {
        let src = "fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
        // Un-unwrapped partial_cmp (Option handled) is fine, as are
        // PartialOrd impls that *define* partial_cmp.
        let src = "fn t(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)\n}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    // ---- annotation grammar -------------------------------------------

    #[test]
    fn annotation_missing_reason_is_bad() {
        let src = "// tetrilint: allow(wall-clock)\nfn t() {}";
        assert_eq!(fired(BENCH, src), vec!["bad-annotation"]);
    }

    #[test]
    fn annotation_unknown_rule_is_bad() {
        let src = "// tetrilint: allow(wal-clock) -- typo\nfn t() {}";
        assert_eq!(fired(BENCH, src), vec!["bad-annotation"]);
    }

    #[test]
    fn annotation_prose_mention_is_fine() {
        let src = "// run tetrilint before pushing\nfn t() {}";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn annotation_wrong_rule_does_not_silence() {
        let src = "fn t(x: Option<u32>) -> u32 {\n    // tetrilint: allow(wall-clock) -- wrong rule for this site\n    x.unwrap()\n}";
        let scan = scan_source(HOT, src);
        assert_eq!(
            scan.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec!["unwrap"]
        );
        assert!(!scan.allows[0].used);
    }

    // ---- tokenizer robustness -----------------------------------------

    #[test]
    fn strings_comments_and_chars_never_fire() {
        let src = r##"
fn t() -> (String, char, &'static str) {
    // Instant::now() in a comment
    /* thread_rng() in a /* nested */ block comment */
    let s = "Instant::now() and x.unwrap() and 1.0 == 2.0".to_string();
    let r = r#"SystemTime and groups.into_values()"#;
    (s, 'x', r)
}
"##;
        assert_eq!(fired(HOT, src), Vec::<&str>::new());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "struct W<'a> { s: &'a str }\nfn t<'b>(w: &'b W<'b>) -> &'b str { w.s }";
        assert_eq!(fired(BENCH, src), Vec::<&str>::new());
    }

    #[test]
    fn report_renders_json_and_text() {
        let mut rep = report::LintReport::default();
        rep.absorb(scan_source(
            HOT,
            "fn t(x: Option<u32>) -> u32 { x.unwrap() }",
        ));
        rep.finish();
        assert!(!rep.is_clean());
        let json = rep.render_json();
        assert!(json.contains("\"schema\": \"tetrilint/v2\""));
        assert!(json.contains("\"rule\": \"unwrap\""));
        let text = rep.render_text();
        assert!(text.contains("crates/core/src/dp.rs:1: unwrap:"), "{text}");
    }
}
