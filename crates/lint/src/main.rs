//! `tetrilint` — scan the workspace and exit non-zero on any violation.
//!
//! ```text
//! tetrilint [--json] [--strict] [ROOT]
//! ```
//!
//! With no `ROOT`, walks up from the current directory to the first
//! ancestor containing a `Cargo.toml` with a `[workspace]` section (so
//! `cargo run -p tetriserve-lint` works from any crate dir). `--json`
//! emits the `tetrilint/v1` document instead of `file:line:` text;
//! `--strict` additionally promotes unused allow annotations to
//! `unused-allow` violations. The exit code is 1 whenever violations
//! exist, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("usage: tetrilint [--json] [--strict] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("tetrilint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("tetrilint: no workspace root found (pass it explicitly)");
            return ExitCode::from(2);
        }
    };

    match tetriserve_lint::scan_workspace(&root) {
        Ok(mut report) => {
            if strict {
                report.enforce_unused_allows();
            }
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tetrilint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
