//! `tetrilint` — scan the workspace and exit non-zero on any violation.
//!
//! ```text
//! tetrilint [--json] [--strict] [--baseline FILE | --write-baseline FILE] [ROOT]
//! ```
//!
//! With no `ROOT`, walks up from the current directory to the first
//! ancestor containing a `Cargo.toml` with a `[workspace]` section (so
//! `cargo run -p tetriserve-lint` works from any crate dir). `--json`
//! emits the `tetrilint/v2` document instead of `file:line:` text;
//! `--strict` additionally promotes unused allow annotations to
//! `unused-allow` violations. `--write-baseline FILE` snapshots the
//! current findings and exits 0; `--baseline FILE` fails only on
//! findings *new* relative to the snapshot (see `baseline` module). The
//! exit code is 1 whenever (post-baseline) violations exist, so CI can
//! gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--baseline" | "--write-baseline" => {
                let Some(path) = args.next() else {
                    eprintln!("tetrilint: {arg} requires a file path");
                    return ExitCode::from(2);
                };
                if arg == "--baseline" {
                    baseline = Some(PathBuf::from(path));
                } else {
                    write_baseline = Some(PathBuf::from(path));
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: tetrilint [--json] [--strict] \
                     [--baseline FILE | --write-baseline FILE] [ROOT]"
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("tetrilint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if baseline.is_some() && write_baseline.is_some() {
        eprintln!("tetrilint: --baseline and --write-baseline are mutually exclusive");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("tetrilint: no workspace root found (pass it explicitly)");
            return ExitCode::from(2);
        }
    };

    match tetriserve_lint::scan_workspace(&root) {
        Ok(mut report) => {
            if strict {
                report.enforce_unused_allows();
            }
            if let Some(path) = write_baseline {
                let snap = tetriserve_lint::baseline::snapshot(&report);
                if let Err(e) = std::fs::write(&path, snap) {
                    eprintln!("tetrilint: cannot write baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "tetrilint: baseline written to {} ({} violation{} snapshotted)",
                    path.display(),
                    report.violations.len(),
                    if report.violations.len() == 1 {
                        ""
                    } else {
                        "s"
                    },
                );
                return ExitCode::SUCCESS;
            }
            if let Some(path) = baseline {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("tetrilint: cannot read baseline {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                };
                let base = match tetriserve_lint::baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("tetrilint: {e}");
                        return ExitCode::from(2);
                    }
                };
                report.violations = tetriserve_lint::baseline::diff(&report, &base);
            }
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tetrilint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
