//! Workspace symbol table and conservative call graph.
//!
//! Nodes are every non-test `fn` the parser found anywhere in the
//! workspace. Edges come from call sites, resolved by *name* with a
//! little context — there is no type inference here, so resolution
//! over-approximates on purpose (DESIGN.md §16 documents the blind
//! spots):
//!
//! * `self.name(…)` resolves to methods named `name` on the enclosing
//!   impl type first, falling back to every method of that name in the
//!   workspace (trait default methods live on the trait, not the impl).
//! * `recv.name(…)` resolves to **every** workspace method named `name`
//!   — the receiver's type is unknown, and dyn-trait dispatch
//!   (`Box<dyn Policy>`, `Box<dyn Router>`) must reach every impl anyway.
//! * `Type::name(…)` resolves to methods of `Type` when such an impl
//!   exists, else to free fns named `name` in files whose stem is
//!   `type`'s snake case (module calls like `admission::coordinate`).
//! * `name(…)` resolves to every free fn named `name`.
//!
//! All resolution is additionally gated by **import visibility**: a call
//! in file `F` can only resolve into crate `C` when `C` is `F`'s own
//! crate or `F` has a `use tetriserve_<c>::…` edge. Without the gate,
//! common method names (`next`, `parse`, `get`) would weld every crate
//! to every other and the chains would be noise; with it, the fan-out
//! stays honest to what the code can actually name.
//!
//! Calls that resolve to nothing are external (std or shims) and create
//! no edge. The over-approximation direction is deliberate: a missing
//! edge hides a real taint path, a spurious edge only costs a reviewed
//! allow at a sink that needed one anyway.

use std::collections::BTreeMap;

use crate::parser::{CallTarget, FileItems, FnItem};

/// Round-loop basenames that root the panic pass. A superset of the
/// per-file hot-file scope ([`crate::rules`]): the fleet driver's event
/// loop (`driver.rs`) is the per-round hot path of the fleet layer even
/// though the per-file `unwrap`/`slice-index` rules don't police it —
/// its panic sinks are exactly what the interprocedural pass exists to
/// catch.
pub const ROUND_LOOP_FILES: &[&str] = &[
    "dp.rs",
    "scheduler.rs",
    "batching.rs",
    "engine.rs",
    "driver.rs",
];

/// The workspace call graph over `items` (one entry per scanned file).
#[derive(Debug)]
pub struct WorkspaceGraph<'a> {
    /// The per-file item lists the graph was built from.
    pub items: &'a [FileItems],
    /// Graph nodes as `(file index, fn index)` pairs, in file/source
    /// order — node ids are indices into this vec.
    pub nodes: Vec<(usize, usize)>,
    /// Adjacency: `edges[n]` is the sorted, deduped callee set of node
    /// `n`.
    pub edges: Vec<Vec<usize>>,
}

/// Entry-point sets for the three taint passes.
#[derive(Debug, Default)]
pub struct EntryPoints {
    /// Decision-path roots: `Policy::schedule` impls, `Router::route`
    /// impls, `Rebalancer::plan` impls, and the fleet admission
    /// coordinator.
    pub determinism: Vec<usize>,
    /// Per-round hot-path roots: every fn defined in a hot-path module,
    /// plus the parallel-lockstep roots (a panic on a worker thread
    /// poisons the whole scope).
    pub panic: Vec<usize>,
    /// Parallel-lockstep roots: fns that spawn scoped threads.
    pub parallel: Vec<usize>,
}

impl<'a> WorkspaceGraph<'a> {
    /// The `FnItem` behind node `n`.
    pub fn fn_item(&self, n: usize) -> &'a FnItem {
        let (fi, xi) = self.nodes[n];
        &self.items[fi].fns[xi]
    }

    /// Workspace-relative file of node `n`.
    pub fn file_of(&self, n: usize) -> &'a str {
        &self.items[self.nodes[n].0].file
    }

    /// Human label for node `n` (`Type::name` or bare `name`).
    pub fn label_of(&self, n: usize) -> String {
        let f = self.fn_item(n);
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Discover the taint entry points. Discovery is structural (trait
    /// names, spawn calls, hot basenames), so a rename that orphans an
    /// entry point empties the set — the `workspace_graph` self-check
    /// fails rather than silently passing a hollow analysis.
    pub fn entry_points(&self) -> EntryPoints {
        let mut ep = EntryPoints::default();
        for n in 0..self.nodes.len() {
            let f = self.fn_item(n);
            let file = self.file_of(n);
            let basename = file.rsplit('/').next().unwrap_or(file);
            let in_trait =
                |t: &str| f.trait_name.as_deref() == Some(t) || f.owner.as_deref() == Some(t);
            let deterministic_root = (f.name == "schedule" && in_trait("Policy"))
                || (f.name == "route" && in_trait("Router"))
                || (f.name == "plan" && in_trait("Rebalancer"))
                || (f.name == "coordinate" && f.owner.is_none() && basename == "admission.rs")
                || (f.name == "next_spec" && in_trait("ArrivalSource"))
                || (f.name == "plan_stage_dispatch" && f.owner.is_none() && basename == "stage.rs");
            if deterministic_root {
                ep.determinism.push(n);
            }
            let spawns = f.calls.iter().any(|c| {
                matches!(
                    &c.target,
                    CallTarget::Method { name, .. } if name == "spawn"
                ) || matches!(&c.target, CallTarget::Free(name) if name == "spawn")
                    || matches!(&c.target, CallTarget::Qualified { name, .. } if name == "spawn")
            });
            if spawns {
                ep.parallel.push(n);
            }
            if ROUND_LOOP_FILES.contains(&basename) || spawns {
                ep.panic.push(n);
            }
        }
        ep
    }

    /// BFS over call edges from `entries` (processed in order), returning
    /// `parent[n] = Some(caller)` for every reachable node (`None` for
    /// the entries themselves). Deterministic: adjacency is sorted and
    /// entries are visited in the given order.
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if !parent.contains_key(&e) {
                parent.insert(e, None);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !parent.contains_key(&m) {
                    parent.insert(m, Some(n));
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reconstruct the entry→…→`node` chain from a [`Self::reach`] map.
    pub fn chain_to(&self, parent: &BTreeMap<usize, Option<usize>>, node: usize) -> Vec<usize> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(Some(p)) = parent.get(&cur) {
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();
        chain
    }
}

/// The workspace crate a file belongs to (`crates/<name>/…` → `name`,
/// anything else → the root pseudo-crate `""`).
fn crate_key(file: &str) -> &str {
    file.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Build the symbol table and resolve every call site into edges.
pub fn build(items: &[FileItems]) -> WorkspaceGraph<'_> {
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in items.iter().enumerate() {
        for (xi, f) in file.fns.iter().enumerate() {
            if !f.is_test {
                nodes.push((fi, xi));
            }
        }
    }

    // Import visibility: which crates each file can resolve into — its
    // own, plus every `tetriserve_<c>` its `use` list names.
    let mut visible: Vec<std::collections::BTreeSet<&str>> = Vec::with_capacity(items.len());
    for file in items {
        let mut vis = std::collections::BTreeSet::new();
        vis.insert(crate_key(&file.file));
        for u in &file.uses {
            let first = u.split("::").next().unwrap_or("");
            if let Some(c) = first.strip_prefix("tetriserve_") {
                vis.insert(c);
            }
        }
        visible.push(vis);
    }
    let node_crate: Vec<&str> = nodes
        .iter()
        .map(|&(fi, _)| crate_key(&items[fi].file))
        .collect();

    // Symbol table: free fns, methods, and (owner, method) pairs.
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    // File stem → free fns, for `module::func` calls.
    let mut by_stem: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (n, &(fi, xi)) in nodes.iter().enumerate() {
        let f = &items[fi].fns[xi];
        match &f.owner {
            Some(owner) => {
                methods.entry(&f.name).or_default().push(n);
                owned.entry((owner, &f.name)).or_default().push(n);
            }
            None => {
                free.entry(&f.name).or_default().push(n);
                let file = &items[fi].file;
                let stem = file
                    .rsplit('/')
                    .next()
                    .unwrap_or(file)
                    .trim_end_matches(".rs");
                by_stem.entry((stem, &f.name)).or_default().push(n);
            }
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (n, &(fi, xi)) in nodes.iter().enumerate() {
        let f = &items[fi].fns[xi];
        let vis = &visible[fi];
        let out = &mut edges[n];
        // Candidates survive only if the calling file imports (or owns)
        // their crate; returns whether anything landed.
        let push = |out: &mut Vec<usize>, t: &[usize]| -> bool {
            let before = out.len();
            out.extend(t.iter().filter(|&&m| vis.contains(node_crate[m])));
            out.len() > before
        };
        for call in &f.calls {
            match &call.target {
                CallTarget::Free(name) => {
                    if let Some(t) = free.get(name.as_str()) {
                        push(out, t);
                    }
                }
                CallTarget::Method { name, on_self } => {
                    let own_hit = *on_self
                        && f.owner.as_deref().is_some_and(|o| {
                            owned.get(&(o, name.as_str())).is_some_and(|t| push(out, t))
                        });
                    if !own_hit {
                        if let Some(t) = methods.get(name.as_str()) {
                            push(out, t);
                        }
                    }
                }
                CallTarget::Qualified { qualifier, name } => {
                    if let Some(t) = owned.get(&(qualifier.as_str(), name.as_str())) {
                        push(out, t);
                    } else if let Some(t) = by_stem.get(&(qualifier.as_str(), name.as_str())) {
                        push(out, t);
                    } else if qualifier == "Self" {
                        if let Some(t) = methods.get(name.as_str()) {
                            push(out, t);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    WorkspaceGraph {
        items,
        nodes,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tokenizer::lex;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<FileItems>, ()) {
        let items: Vec<FileItems> = srcs.iter().map(|(l, s)| parse(l, &lex(s))).collect();
        (items, ())
    }

    #[test]
    fn free_call_edges_cross_files() {
        let (items, _) = graph_of(&[
            (
                "crates/a/src/one.rs",
                "use tetriserve_b::two::helper;\nfn caller() { helper(); }",
            ),
            (
                "crates/b/src/two.rs",
                "fn helper() { leaf(); }\nfn leaf() {}",
            ),
        ]);
        let g = build(&items);
        assert_eq!(g.nodes.len(), 3);
        let caller = 0;
        let helper = 1;
        let leaf = 2;
        assert_eq!(g.edges[caller], vec![helper]);
        assert_eq!(g.edges[helper], vec![leaf]);
        let reach = g.reach(&[caller]);
        assert_eq!(g.chain_to(&reach, leaf), vec![caller, helper, leaf]);
    }

    #[test]
    fn unimported_crates_are_not_resolution_targets() {
        // Same call, no `use tetriserve_b` edge: the candidate is
        // invisible and no edge forms — common names (`next`, `get`)
        // must not weld unrelated crates together.
        let (items, _) = graph_of(&[
            ("crates/a/src/one.rs", "fn caller() { helper(); }"),
            ("crates/b/src/two.rs", "fn helper() {}"),
        ]);
        let g = build(&items);
        assert_eq!(g.edges[0], Vec::<usize>::new());
        // Within one crate, sibling modules resolve without imports.
        let (items, _) = graph_of(&[
            ("crates/a/src/one.rs", "fn caller() { helper(); }"),
            ("crates/a/src/two.rs", "fn helper() {}"),
        ]);
        let g = build(&items);
        assert_eq!(g.edges[0], vec![1]);
    }

    #[test]
    fn self_method_resolves_to_own_impl_first() {
        let (items, _) = graph_of(&[(
            "crates/a/src/one.rs",
            "impl A {\n    fn go(&self) { self.helper(); }\n    fn helper(&self) {}\n}\nimpl B {\n    fn helper(&self) {}\n}",
        )]);
        let g = build(&items);
        // A::go → A::helper only (not B::helper).
        assert_eq!(g.edges[0], vec![1]);
    }

    #[test]
    fn unqualified_method_fans_out_to_all_impls() {
        let (items, _) = graph_of(&[(
            "crates/a/src/one.rs",
            "fn drive(p: &mut dyn Policy) { p.schedule(); }\nimpl Policy for X {\n    fn schedule(&mut self) {}\n}\nimpl Policy for Y {\n    fn schedule(&mut self) {}\n}",
        )]);
        let g = build(&items);
        assert_eq!(g.edges[0], vec![1, 2]);
    }

    #[test]
    fn module_qualified_call_resolves_by_file_stem() {
        let (items, _) = graph_of(&[
            (
                "crates/f/src/driver.rs",
                "fn route_or_shed() { admission::coordinate(); }",
            ),
            ("crates/f/src/admission.rs", "pub fn coordinate() {}"),
        ]);
        let g = build(&items);
        assert_eq!(g.edges[0], vec![1]);
    }

    #[test]
    fn entry_points_discovered_structurally() {
        let (items, _) = graph_of(&[
            (
                "crates/core/src/scheduler.rs",
                "impl Policy for TetriServePolicy {\n    fn schedule(&mut self) {}\n}",
            ),
            (
                "crates/fleet/src/router.rs",
                "impl Router for RoundRobinRouter {\n    fn route(&mut self) {}\n}",
            ),
            (
                "crates/fleet/src/rebalance.rs",
                "impl Rebalancer for EdfRebalancer {\n    fn plan(&mut self) {}\n}",
            ),
            ("crates/fleet/src/admission.rs", "pub fn coordinate() {}"),
            (
                "crates/core/src/stage.rs",
                "pub fn plan_stage_dispatch() {}",
            ),
            (
                "crates/fleet/src/driver.rs",
                "impl FleetSim {\n    fn drain_internal(&mut self) { std::thread::scope(|s| { s.spawn(|| {}); }); }\n}",
            ),
        ]);
        let g = build(&items);
        let ep = g.entry_points();
        assert_eq!(ep.determinism.len(), 5); // schedule, route, plan, coordinate, plan_stage_dispatch
        assert_eq!(ep.parallel.len(), 1);
        // Hot file (scheduler.rs) fn + the parallel root.
        assert_eq!(ep.panic.len(), 2);
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let (items, _) = graph_of(&[(
            "crates/a/src/one.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { live(); }\n}",
        )]);
        let g = build(&items);
        assert_eq!(g.nodes.len(), 1);
    }
}
