//! The rule engine: three rule families over the token stream.
//!
//! Every rule exists because the reproduction's headline claim — the
//! simulator is a faithful, *deterministic* substrate and the perf
//! harness's FNV-1a decision digests are comparable across runs — is a
//! property of the whole codebase, not of any one module. See DESIGN.md
//! §11 for the rule-by-rule rationale.
//!
//! | rule                   | family            | scope                      |
//! |------------------------|-------------------|----------------------------|
//! | `wall-clock`           | determinism       | every scanned file         |
//! | `ambient-rng`          | determinism       | every scanned file         |
//! | `unordered-iter`       | determinism       | decision-path crates       |
//! | `unordered-collect`    | determinism       | every scanned file         |
//! | `unwrap`               | panic-discipline  | hot-path modules           |
//! | `slice-index`          | panic-discipline  | hot-path modules           |
//! | `sim-time-monotonicity`| panic-discipline  | every scanned file         |
//! | `nominal-step-time`    | fault-discipline  | speed-aware core modules   |
//! | `units-of-measure`     | unit-discipline   | time-unit-sensitive files  |
//! | `float-eq`             | float-discipline  | every scanned file         |
//! | `partial-cmp-unwrap`   | float-discipline  | every scanned file         |
//! | `bad-annotation`       | (meta)            | every scanned file         |
//! | `unused-allow`         | (meta, `--strict`)| every scanned file         |
//!
//! Decision-path crates are the ones whose control flow picks schedules:
//! `core`, `simulator`, `metrics`, `costmodel`, `baselines`, `fleet`.
//! Hot-path modules are the per-round inner loop: `dp.rs`, `scheduler.rs`,
//! `batching.rs`, `engine.rs`. `#[cfg(test)]` items are skipped — tests
//! are not decision paths and `unwrap` is idiomatic there.

use crate::tokenizer::{AllowScope, Lexed, Tok, TokKind};

/// Every rule name the annotation grammar accepts.
pub const RULE_NAMES: &[&str] = &[
    "wall-clock",
    "ambient-rng",
    "unordered-iter",
    "unordered-collect",
    "unwrap",
    "slice-index",
    "sim-time-monotonicity",
    "nominal-step-time",
    "units-of-measure",
    "float-eq",
    "partial-cmp-unwrap",
    "taint-determinism",
    "taint-panic",
    "taint-parallel",
    "bad-annotation",
    "unused-allow",
];

/// Crate sub-paths whose files count as scheduling decision paths.
pub(crate) const DECISION_PATHS: &[&str] = &[
    "crates/core/src/",
    "crates/simulator/src/",
    "crates/metrics/src/",
    "crates/costmodel/src/",
    "crates/baselines/src/",
    "crates/fleet/src/",
    "crates/traffic/src/",
];

/// Per-round inner-loop modules held to panic discipline.
pub(crate) const HOT_FILES: &[&str] = &["dp.rs", "scheduler.rs", "batching.rs", "engine.rs"];

/// Modules that reason about step durations while GPUs may be slowed by
/// perf faults. A raw `CostTable::step_time`/`t_min` read there assumes
/// nominal speed; sites that *mean* nominal (e.g. demand accounting in
/// nominal GPU-seconds) must say so with an allow annotation.
const SPEED_AWARE_FILES: &[&str] = &[
    "scheduler.rs",
    "feasibility.rs",
    "policy.rs",
    "server.rs",
    "quality.rs",
];

/// Modules whose arithmetic spans three time units — integer microseconds
/// (`SimTime`/`SimDuration::as_micros`), float wall-seconds
/// (`as_secs_f64`/`from_secs_f64`), and float GPU-seconds (demand) —
/// where a missed 1e6 scale factor produces numbers that look plausible
/// per-term and are silently wrong in aggregate.
const UNITS_FILES: &[&str] = &["feasibility.rs", "steptime.rs", "interconnect.rs"];

/// Unordered-collection methods whose yield order is the RandomState hash
/// order (`retain`/`drain` visit in that order too).
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// One hop of an interprocedural taint chain (`entry → … → sink`).
#[derive(Debug, Clone)]
pub struct ChainHop {
    /// `Type::name` or bare `name` of the function.
    pub func: String,
    /// Workspace-relative file the function is defined in.
    pub file: String,
    /// 1-based line of the `fn` item.
    pub line: u32,
}

/// One rule hit, after allow-annotation filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path (or the fixture label in unit tests).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name from [`RULE_NAMES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For `taint-*` rules: the entry→…→sink call chain (the violation's
    /// own `file:line` locates the sink). Empty for per-file rules.
    pub chain: Vec<ChainHop>,
}

/// One `tetrilint: allow` annotation, with whether anything used it.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the annotation comment.
    pub line: u32,
    /// Rule it silences.
    pub rule: String,
    /// Justification text after `--`.
    pub reason: String,
    /// `allow-file` vs. line-scoped `allow`.
    pub file_scope: bool,
    /// Whether at least one would-be violation matched it.
    pub used: bool,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Violations surviving allow filtering, sorted by (line, rule).
    pub violations: Vec<Violation>,
    /// Every annotation in the file.
    pub allows: Vec<AllowRecord>,
}

/// Run every rule against one lexed file.
pub fn check(file_label: &str, lexed: &Lexed) -> FileScan {
    let norm = file_label.replace('\\', "/");
    let mut allows = Allows::new(lexed, &norm);
    let violations = check_file(&norm, lexed, &mut allows);
    FileScan {
        violations,
        allows: allows.into_records(),
    }
}

/// Per-file rule pass only; the caller owns `allows` so the workspace
/// taint pass can consult (and mark used) the same annotations later.
pub(crate) fn check_file(norm: &str, lexed: &Lexed, allows: &mut Allows) -> Vec<Violation> {
    let basename = norm.rsplit('/').next().unwrap_or(norm);
    let decision_path = DECISION_PATHS.iter().any(|p| norm.contains(p));
    let hot_path = HOT_FILES.contains(&basename);
    let speed_aware = decision_path && SPEED_AWARE_FILES.contains(&basename);
    let units_scoped = UNITS_FILES.contains(&basename);

    let live = live_tokens(lexed);
    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();

    // Malformed or unknown-rule annotations are violations themselves:
    // a typo must not silently disable a rule.
    for m in &lexed.malformed {
        raw.push((m.line, "bad-annotation", m.message.clone()));
    }
    for a in &lexed.annotations {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            raw.push((
                a.line,
                "bad-annotation",
                format!(
                    "unknown rule `{}` (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            ));
        }
    }

    rule_wall_clock(&live, &mut raw);
    rule_ambient_rng(&live, &mut raw);
    if decision_path {
        rule_unordered_iter(&live, &mut raw);
    }
    // `unordered-collect` runs everywhere, but defers to `unordered-iter`
    // where both fire on the same line — decision paths already ban the
    // iteration itself, and one site should not cost two annotations.
    let iter_lines: Vec<u32> = raw
        .iter()
        .filter(|(_, rule, _)| *rule == "unordered-iter")
        .map(|(line, _, _)| *line)
        .collect();
    let mut collect_hits: Vec<(u32, &'static str, String)> = Vec::new();
    rule_unordered_collect(&live, &mut collect_hits);
    raw.extend(
        collect_hits
            .into_iter()
            .filter(|(line, _, _)| !iter_lines.contains(line)),
    );
    if hot_path {
        rule_unwrap(&live, &mut raw);
        rule_slice_index(&live, &mut raw);
    }
    rule_sim_time_monotonicity(&live, &mut raw);
    if speed_aware {
        rule_nominal_step_time(&live, &mut raw);
    }
    if units_scoped {
        rule_units_of_measure(&live, &mut raw);
    }
    rule_float_eq(&live, &mut raw);
    rule_partial_cmp_unwrap(&live, &mut raw);

    let mut violations: Vec<Violation> = raw
        .into_iter()
        .filter(|(line, rule, _)| !allows.covers(*line, rule))
        .map(|(line, rule, message)| Violation {
            file: norm.to_string(),
            line,
            rule,
            message,
            chain: Vec::new(),
        })
        .collect();
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}

/// The file's token stream with `#[cfg(test)]` items filtered out.
pub(crate) fn live_tokens(lexed: &Lexed) -> Vec<&Tok> {
    let mask = test_mask(&lexed.tokens);
    lexed
        .tokens
        .iter()
        .zip(&mask)
        .filter(|(_, &m)| !m)
        .map(|(t, _)| t)
        .collect()
}

/// Marks tokens covered by a `#[cfg(test)]` attribute and the item that
/// follows it (to the matching close brace, or `;` for brace-less items).
/// Shared with the item parser, which excludes test fns from the graph.
pub(crate) fn test_mask_of(toks: &[Tok]) -> Vec<bool> {
    test_mask(toks)
}

fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !attr {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 7;
        let end = loop {
            let Some(t) = toks.get(j) else {
                break toks.len();
            };
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    if depth <= 1 {
                        break j + 1;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => break j + 1,
                _ => {}
            }
            j += 1;
        };
        for m in &mut mask[i..end] {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Allow-annotation bookkeeping: file-scoped and line-scoped silencers.
pub(crate) struct Allows {
    records: Vec<AllowRecord>,
    /// Per line-scoped record, the set of lines it silences: its own line
    /// (trailing comment) and the next line containing code (standalone
    /// comment above the offending statement).
    targets: Vec<Option<(u32, u32)>>,
}

impl Allows {
    pub(crate) fn new(lexed: &Lexed, file: &str) -> Allows {
        let mut records = Vec::new();
        let mut targets = Vec::new();
        for a in &lexed.annotations {
            let file_scope = a.scope == AllowScope::File;
            records.push(AllowRecord {
                file: file.to_string(),
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
                file_scope,
                used: false,
            });
            if file_scope {
                targets.push(None);
            } else {
                let next_code_line = lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > a.line)
                    .unwrap_or(a.line);
                targets.push(Some((a.line, next_code_line)));
            }
        }
        Allows { records, targets }
    }

    /// True (and marks the annotation used) if some allow covers the hit.
    fn covers(&mut self, line: u32, rule: &str) -> bool {
        for (rec, target) in self.records.iter_mut().zip(&self.targets) {
            if rec.rule != rule {
                continue;
            }
            let hit = match target {
                None => true, // file scope
                Some((own, next)) => line == *own || line == *next,
            };
            if hit {
                rec.used = true;
                return true;
            }
        }
        false
    }

    /// Like [`Self::covers`] for any of several rule names — the taint
    /// passes accept both their own name and the sink's per-file rule
    /// name (a sink justified for the per-file rule is justified for
    /// every chain that ends on it).
    pub(crate) fn covers_any(&mut self, line: u32, rules: &[&str]) -> bool {
        rules.iter().any(|r| self.covers(line, r))
    }

    pub(crate) fn into_records(self) -> Vec<AllowRecord> {
        self.records
    }
}

/// `.step_time(` / `.t_min(` in speed-aware modules: a nominal per-step
/// estimate sizes dispatches as if every GPU ran at profiled speed, so a
/// straggler or throttle overruns the round boundary (and EDF admits work
/// the derated node cannot finish). Decision code must route through
/// `SchedContext::effective_step_time` / effective capacity; sites that
/// genuinely mean nominal work (demand in nominal GPU-seconds, quality
/// debt) annotate why.
fn rule_nominal_step_time(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "step_time" && t.text != "t_min") {
            continue;
        }
        // Method call only: `. step_time (` / `. t_min (`.
        if k == 0 || toks[k - 1].text != "." || toks.get(k + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        out.push((
            t.line,
            "nominal-step-time",
            format!(
                "`.{}()` reads the nominal (fault-free) step time; under slowdown \
                 faults use `effective_step_time`/effective capacity, or annotate \
                 why nominal is correct here",
                t.text
            ),
        ));
    }
}

/// `.as_micros()` (integer microseconds) and `as_secs_f64`/
/// `from_secs_f64` (float seconds, the unit GPU-second demand is priced
/// in) mixed inside one statement in a units-sensitive module: the
/// hidden 1e6 scale factor is the classic silent unit bug — each term
/// looks plausible alone and the sum is wrong by six orders of
/// magnitude. Convert to one unit at the statement boundary, or
/// annotate the site stating which unit the result carries.
fn rule_units_of_measure(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    let mut hit_lines: Vec<u32> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as_micros" {
            continue;
        }
        // Method call only: `. as_micros (`.
        if k == 0 || toks[k - 1].text != "." || toks.get(k + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        // Statement window: back to the previous `;`/`{`/`}`, forward to
        // the next `;` (or EOF for tail expressions).
        let stmt_start = (0..k)
            .rev()
            .find(|&j| matches!(toks[j].text.as_str(), ";" | "{" | "}"))
            .map_or(0, |j| j + 1);
        let stmt_end = (k..toks.len())
            .find(|&j| toks[j].text == ";")
            .unwrap_or(toks.len());
        let seconds_site = (stmt_start..stmt_end).find(|&j| {
            toks[j].kind == TokKind::Ident
                && (toks[j].text == "as_secs_f64" || toks[j].text == "from_secs_f64")
        });
        let Some(s) = seconds_site else { continue };
        if hit_lines.contains(&t.line) {
            continue; // one hit per line, however many calls share it
        }
        hit_lines.push(t.line);
        out.push((
            t.line,
            "units-of-measure",
            format!(
                "`.as_micros()` (integer µs) mixed with `{}` (float seconds) in one \
                 statement; convert to a single unit first or annotate which unit \
                 the result carries",
                toks[s].text
            ),
        ));
    }
}

/// `Instant::now()` / `SystemTime`: wall-clock reads make runs
/// non-reproducible; simulated components must use `SimTime`.
fn rule_wall_clock(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant"
            && toks.get(k + 1).is_some_and(|t| t.text == "::")
            && toks.get(k + 2).is_some_and(|t| t.text == "now")
        {
            out.push((
                t.line,
                "wall-clock",
                "`Instant::now()` reads host wall-clock; simulated paths must use SimTime"
                    .to_string(),
            ));
        }
        if t.text == "SystemTime" {
            out.push((
                t.line,
                "wall-clock",
                "`SystemTime` reads host wall-clock; simulated paths must use SimTime".to_string(),
            ));
        }
    }
}

/// `thread_rng()` / `ThreadRng`: ambient OS-seeded randomness breaks
/// same-seed reproducibility; draw from the run's seeded `SimRng`.
fn rule_ambient_rng(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "thread_rng" || t.text == "ThreadRng") {
            out.push((
                t.line,
                "ambient-rng",
                "ambient OS-seeded RNG; draw from the run's seeded SimRng instead".to_string(),
            ));
        }
    }
}

/// Unordered `HashMap`/`HashSet` iteration in decision-path crates: std's
/// RandomState is seeded per map instance, so iteration order differs
/// between same-seed runs — the exact bug class behind the PR-2 digest
/// mismatches. Bindings are found lexically: any identifier declared with
/// a `HashMap`/`HashSet` type ascription in this file.
pub(crate) fn rule_unordered_iter(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    let bindings = hash_bindings(toks);
    if bindings.is_empty() {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bindings.contains(&t.text.as_str()) {
            continue;
        }
        let name = &t.text;
        // `name.iter()` / `.values()` / `.into_values()` / `.drain()` …
        if toks.get(k + 1).is_some_and(|t| t.text == ".")
            && toks
                .get(k + 2)
                .is_some_and(|t| UNORDERED_METHODS.contains(&t.text.as_str()))
            && toks.get(k + 3).is_some_and(|t| t.text == "(")
        {
            let method = &toks[k + 2].text;
            out.push((
                t.line,
                "unordered-iter",
                format!(
                    "`{name}.{method}()` iterates a std HashMap/HashSet in hash order \
                     (randomized per map); use BTreeMap/BTreeSet or collect-and-sort"
                ),
            ));
            continue;
        }
        // `for x in &name {` / `for x in name {`
        let mut p = k;
        while p >= 1 && (toks[p - 1].text == "&" || toks[p - 1].text == "mut") {
            p -= 1;
        }
        if p >= 1
            && toks[p - 1].text == "in"
            && toks[p - 1].kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|t| t.text == "{")
        {
            out.push((
                t.line,
                "unordered-iter",
                format!(
                    "`for … in {name}` iterates a std HashMap/HashSet in hash order \
                     (randomized per map); use BTreeMap/BTreeSet or collect-and-sort"
                ),
            ));
        }
    }
}

/// Identifiers declared with a `HashMap`/`HashSet` type ascription in
/// this file (let bindings, fn params, struct fields), plus let bindings
/// whose *initializer* mentions `HashMap`/`HashSet` with no ascription at
/// all (`let m = HashMap::new()`, `let s = HashSet::with_capacity(8)` —
/// type inference hides the container but not the hash order) — the
/// lexical binding set shared by `unordered-iter` and `unordered-collect`.
fn hash_bindings<'a>(toks: &[&'a Tok]) -> Vec<&'a str> {
    let mut bindings: Vec<&str> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over `std :: collections ::` path segments…
        let mut p = k;
        while p >= 2 && toks[p - 1].text == "::" {
            p -= 2;
        }
        // …and over `&`, `mut` and lifetimes in the type position…
        while p >= 1
            && (toks[p - 1].text == "&"
                || toks[p - 1].text == "mut"
                || toks[p - 1].kind == TokKind::Lifetime)
        {
            p -= 1;
        }
        // …to a `name :` type ascription (let binding, fn param, field).
        if p >= 2 && toks[p - 1].text == ":" && toks[p - 2].kind == TokKind::Ident {
            bindings.push(&toks[p - 2].text);
        }
    }
    // Ascription-free let bindings: `let [mut] name = …HashMap/HashSet…;`
    // — the initializer names the container even when the type is
    // inferred. Scanning stops at the statement's `;` (tracking nesting so
    // a closure body's semicolons don't end it early).
    for (k, t) in toks.iter().enumerate() {
        if t.text != "let" {
            continue;
        }
        let mut p = k + 1;
        if toks.get(p).is_some_and(|t| t.text == "mut") {
            p += 1;
        }
        let Some(name) = toks.get(p).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if toks.get(p + 1).is_none_or(|t| t.text != "=") {
            continue;
        }
        let mut depth = 0usize;
        for j in p + 2..toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                _ => {
                    if toks[j].kind == TokKind::Ident
                        && (toks[j].text == "HashMap" || toks[j].text == "HashSet")
                        && !bindings.contains(&name.text.as_str())
                    {
                        bindings.push(&name.text);
                    }
                }
            }
        }
    }
    bindings
}

/// `map.iter()…collect()` into a `Vec` with no subsequent sort: the Vec
/// freezes the per-instance hash order, so two same-seed runs hold the
/// same elements in different positions. Unlike `unordered-iter` this
/// fires in *every* file — a bench or workload crate that collects hash
/// order into a report poisons digest comparisons just as surely as a
/// scheduler would. Collecting into `BTreeMap`/`BTreeSet` (re-sorts) or
/// `HashMap`/`HashSet` (no materialized order) is fine, as is a
/// `sort*()` call on the collected binding later in the file.
fn rule_unordered_collect(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    let bindings = hash_bindings(toks);
    if bindings.is_empty() {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bindings.contains(&t.text.as_str()) {
            continue;
        }
        let unordered_site = toks.get(k + 1).is_some_and(|t| t.text == ".")
            && toks
                .get(k + 2)
                .is_some_and(|t| UNORDERED_METHODS.contains(&t.text.as_str()))
            && toks.get(k + 3).is_some_and(|t| t.text == "(");
        if !unordered_site {
            continue;
        }
        // Statement window: back to the previous `;`/`{`/`}`, forward to
        // the next `;` (or EOF for tail expressions).
        let stmt_start = (0..k)
            .rev()
            .find(|&j| matches!(toks[j].text.as_str(), ";" | "{" | "}"))
            .map_or(0, |j| j + 1);
        let stmt_end = (k..toks.len())
            .find(|&j| toks[j].text == ";")
            .unwrap_or(toks.len());
        let Some(c) = (k + 3..stmt_end)
            .find(|&j| toks[j].kind == TokKind::Ident && toks[j].text == "collect")
        else {
            continue;
        };
        // The collect target, where lexically visible (turbofish after
        // `collect`, or the let-ascription ahead of the chain). A BTree
        // target re-sorts; a hash target materializes no order. Anything
        // else — Vec, or inferred — freezes hash order.
        let target_ordered = (stmt_start..k).chain(c..stmt_end.min(c + 8)).any(|j| {
            toks[j].text.starts_with("BTree")
                || toks[j].text == "HashMap"
                || toks[j].text == "HashSet"
        });
        if target_ordered {
            continue;
        }
        // A later `sort*()` on the collected binding restores a canonical
        // order, which is the sanctioned collect-and-sort idiom.
        let bound = if toks.get(stmt_start).is_some_and(|t| t.text == "let") {
            let p = if toks.get(stmt_start + 1).is_some_and(|t| t.text == "mut") {
                stmt_start + 2
            } else {
                stmt_start + 1
            };
            toks.get(p)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
        } else {
            None
        };
        let sorted_later = bound.is_some_and(|name| {
            (stmt_end..toks.len()).any(|j| {
                toks[j].kind == TokKind::Ident
                    && toks[j].text == name
                    && toks.get(j + 1).is_some_and(|t| t.text == ".")
                    && toks.get(j + 2).is_some_and(|t| t.text.starts_with("sort"))
            })
        });
        if sorted_later {
            continue;
        }
        let name = &t.text;
        let method = &toks[k + 2].text;
        out.push((
            t.line,
            "unordered-collect",
            format!(
                "`{name}.{method}()…collect` freezes std HashMap/HashSet hash order \
                 into the result; sort the collected Vec or collect into a BTree container"
            ),
        ));
    }
}

/// `unwrap()`/`expect()` in hot-path modules: a panic mid-round kills the
/// whole serve; either handle the case or justify the invariant inline.
pub(crate) fn rule_unwrap(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.text == "."
            && toks.get(k + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect")
            })
            && toks.get(k + 2).is_some_and(|t| t.text == "(")
        {
            out.push((
                toks[k + 1].line,
                "unwrap",
                format!(
                    "`.{}()` in a hot-path module can panic mid-round; handle the case or \
                     annotate the invariant",
                    toks[k + 1].text
                ),
            ));
        }
    }
}

/// Bare indexing in hot-path modules: `xs[i]` panics on out-of-bounds;
/// pervasive DP-buffer indexing earns a justified `allow-file`.
pub(crate) fn rule_slice_index(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.text != "[" || k == 0 {
            continue;
        }
        let prev = toks[k - 1];
        // Keywords before `[` mean a slice *type* (`&mut [T]`) or other
        // non-index position, never an indexing expression.
        let keyword = matches!(
            prev.text.as_str(),
            "mut" | "dyn" | "in" | "as" | "return" | "else" | "match" | "if" | "const"
        );
        let indexable =
            (prev.kind == TokKind::Ident && !keyword) || prev.text == ")" || prev.text == "]";
        // `vec![…]` and attributes `#[…]` have `!`/`#` before the bracket
        // and are already excluded by the `indexable` test.
        if indexable {
            out.push((
                t.line,
                "slice-index",
                "bare index can panic on out-of-bounds in a hot-path module; use get() or \
                 annotate the sizing invariant"
                    .to_string(),
            ));
        }
    }
}

/// Bare subtraction on raw `.as_micros()` values: `SimTime` itself has no
/// `Sub<SimTime>` (by design — `saturating_since` is the sanctioned
/// difference), so the way underflow sneaks in is dropping to the raw u64
/// microsecond count and subtracting there. `t.as_micros() - n` (and
/// `n - t.as_micros()`) panics in debug builds and wraps to ~u64::MAX in
/// release — a silently corrupted timestamp in a digest-bearing run. Use
/// `saturating_since` / `saturating_sub`, or `checked_sub` with an
/// explicit decision; a genuinely un-underflowable probe earns a justified
/// allow.
fn rule_sim_time_monotonicity(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as_micros" {
            continue;
        }
        // Method call only: `. as_micros ( )`.
        if k == 0
            || toks[k - 1].text != "."
            || toks.get(k + 1).is_none_or(|t| t.text != "(")
            || toks.get(k + 2).is_none_or(|t| t.text != ")")
        {
            continue;
        }
        // `….as_micros() - …`: the call result is the minuend.
        if toks.get(k + 3).is_some_and(|t| t.text == "-") {
            out.push((
                t.line,
                "sim-time-monotonicity",
                "raw `.as_micros()` subtraction can underflow (wraps in release); use \
                 saturating_since/saturating_sub or checked_sub"
                    .to_string(),
            ));
            continue;
        }
        // `… - recv.chain.as_micros()`: walk the receiver chain (an
        // `ident(.ident)*` path) back to the operator ahead of it and
        // check it is a *binary* minus — the token before it is
        // value-like, ruling out unary negation.
        let mut p = k - 1; // the `.` of `.as_micros`
        while p >= 2 && toks[p].text == "." && toks[p - 1].kind == TokKind::Ident {
            p -= 2;
        }
        if toks[p].text == "-" && p > 0 && matches!(toks[p - 1].kind, TokKind::Ident | TokKind::Int)
        {
            out.push((
                t.line,
                "sim-time-monotonicity",
                "raw `.as_micros()` as a subtrahend can underflow (wraps in release); use \
                 saturating_since/saturating_sub or checked_sub"
                    .to_string(),
            ));
        }
    }
}

/// `==`/`!=` where either side is lexically a float (literal, `f64`/`f32`
/// cast): exact float equality is almost never the intended comparison.
fn rule_float_eq(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let float_before = k > 0
            && (toks[k - 1].kind == TokKind::Float
                || toks[k - 1].text == "f64"
                || toks[k - 1].text == "f32");
        let float_after = {
            // Skip a unary minus, then look for a float literal or an
            // `as f64` / `as f32` cast within the next few tokens.
            let start = if toks.get(k + 1).is_some_and(|t| t.text == "-") {
                k + 2
            } else {
                k + 1
            };
            toks.get(start).is_some_and(|t| t.kind == TokKind::Float)
                || (start..start + 4).any(|j| {
                    toks.get(j).is_some_and(|t| t.text == "as")
                        && toks
                            .get(j + 1)
                            .is_some_and(|t| t.text == "f64" || t.text == "f32")
                })
        };
        if float_before || float_after {
            out.push((
                t.line,
                "float-eq",
                format!(
                    "`{}` on a float expression; use total_cmp, an epsilon helper, or \
                     integer units",
                    t.text
                ),
            ));
        }
    }
}

/// `.partial_cmp(..).unwrap()/expect()`: panics on NaN and encodes an
/// unchecked finiteness assumption; `f64::total_cmp` is total and free.
fn rule_partial_cmp_unwrap(toks: &[&Tok], out: &mut Vec<(u32, &'static str, String)>) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "partial_cmp" {
            continue;
        }
        // Method call only — skip `fn partial_cmp` definitions in Ord/
        // PartialOrd impls.
        if k == 0 || toks[k - 1].text != "." {
            continue;
        }
        if toks.get(k + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        let mut depth = 1usize;
        let mut j = k + 2;
        while depth > 0 {
            let Some(t) = toks.get(j) else { break };
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.text == ".")
            && toks
                .get(j + 1)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        {
            out.push((
                t.line,
                "partial-cmp-unwrap",
                "`.partial_cmp(..).unwrap()/expect()` panics on NaN; use f64::total_cmp"
                    .to_string(),
            ));
        }
    }
}
