//! A lightweight item parser on top of [`crate::tokenizer`].
//!
//! This is *not* a Rust grammar — it is the minimum item-level structure
//! the workspace call graph needs: which functions exist (and inside
//! which `impl`/`trait` block), which calls each body makes, which
//! modules a file `use`s, and which `static` items it declares. It runs
//! on the comment/string-stripped token stream, so literal contents can
//! never fabricate an item or a call edge.
//!
//! What it deliberately does not model (documented in DESIGN.md §16):
//! generics and trait bounds (erased), closure boundaries (a closure's
//! calls are attributed to the enclosing `fn` — exactly what the
//! parallel-lockstep pass wants), macro-generated items (invisible), and
//! shadowed local bindings. The graph layer compensates by resolving
//! names conservatively (over-approximating the callee set).

use crate::tokenizer::{Lexed, Tok, TokKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `name(…)` — a bare path call.
    Free(String),
    /// `recv.name(…)` — `on_self` when the receiver is literally `self`.
    Method {
        /// Method name.
        name: String,
        /// True for `self.name(…)` (resolved against the enclosing impl
        /// first).
        on_self: bool,
    },
    /// `Qualifier::name(…)` — the last two path segments.
    Qualified {
        /// Path segment immediately before the call name.
        qualifier: String,
        /// Call name.
        name: String,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 1-based line of the callee token.
    pub line: u32,
    /// Callee shape.
    pub target: CallTarget,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (`r#`-stripped by the lexer).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`impl Trait for Type`
    /// records `Type`; `trait Name { … }` records `Name` so default
    /// methods resolve).
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` blocks (`Trait`); for plain
    /// `trait Name` blocks this equals `owner`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body in the file's token stream
    /// (`start == end` for bodyless trait declarations).
    pub body: (usize, usize),
    /// Calls made anywhere in the body (closures included).
    pub calls: Vec<Call>,
    /// True when the item sits under `#[cfg(test)]` — excluded from the
    /// graph (tests are not decision paths).
    pub is_test: bool,
}

/// One `static` item (`static mut` is the parallel pass's hardest sink).
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// `static mut` vs plain `static`.
    pub is_mut: bool,
}

/// Everything the graph needs from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Workspace-relative label.
    pub file: String,
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// `use` paths, `::`-joined (e.g. `tetriserve_core::policy::Policy`).
    pub uses: Vec<String>,
    /// `static` items at any nesting level.
    pub statics: Vec<StaticItem>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "let", "mut", "ref", "move",
    "else", "impl", "dyn", "where", "unsafe", "pub", "use", "mod", "struct", "enum", "trait",
    "type", "const", "static", "crate", "super", "Self", "self", "box", "break", "continue",
    "extern", "yield",
];

/// Parse one lexed file into its item list.
pub fn parse(file_label: &str, lexed: &Lexed) -> FileItems {
    let test_mask = crate::rules::test_mask_of(&lexed.tokens);
    Parser {
        toks: &lexed.tokens,
        mask: &test_mask,
        out: FileItems {
            file: file_label.to_string(),
            ..FileItems::default()
        },
    }
    .run()
}

struct Parser<'a> {
    toks: &'a [Tok],
    mask: &'a [bool],
    out: FileItems,
}

/// One entry on the open-construct stack: the brace depth *before* the
/// construct's `{` opened, plus what the construct is.
#[derive(Debug)]
enum Frame {
    /// `impl` or `trait` block: (owner type, trait name).
    Impl(Option<String>, Option<String>),
    /// `fn` body: index into `out.fns`.
    Fn(usize),
    /// Any other braced region (`mod`, `match`, plain block, …).
    Other,
}

impl Parser<'_> {
    fn run(mut self) -> FileItems {
        let toks = self.toks;
        // Stack of (depth_before_open, frame).
        let mut stack: Vec<(usize, Frame)> = Vec::new();
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => {
                    // An un-attributed brace opens an `Other` frame so fn
                    // close depths stay aligned.
                    stack.push((depth, Frame::Other));
                    depth += 1;
                    i += 1;
                }
                (TokKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    while let Some((d, frame)) = stack.pop() {
                        let done = d == depth;
                        if let Frame::Fn(fx) = frame {
                            if done {
                                self.out.fns[fx].body.1 = i;
                            }
                        }
                        if done {
                            break;
                        }
                    }
                    i += 1;
                }
                (TokKind::Ident, "use") => i = self.take_use(i),
                (TokKind::Ident, "static") => i = self.take_static(i),
                (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => {
                    let (ni, frame) = self.take_impl_header(i, t.text == "trait");
                    // `impl Type;` / `impl Trait for Type;` never occur —
                    // the header scan stops at `{` (pushed here) or `;`.
                    if toks.get(ni).is_some_and(|t| t.text == "{") {
                        stack.push((depth, frame));
                        depth += 1;
                        i = ni + 1;
                    } else {
                        i = ni;
                    }
                }
                (TokKind::Ident, "fn") => {
                    // `fn(` is a function-pointer type, not an item.
                    if toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                        i = self.take_fn(i, &mut stack, &mut depth);
                    } else {
                        i += 1;
                    }
                }
                _ => {
                    // Call sites are only interesting inside a fn body.
                    if let Some(fx) = innermost_fn(&stack) {
                        if let Some(call) = self.call_at(i) {
                            self.out.fns[fx].calls.push(call);
                        }
                    }
                    i += 1;
                }
            }
        }
        // Unterminated file (should not happen on real sources): close any
        // dangling fn bodies at EOF so ranges stay well-formed.
        for (_, frame) in stack {
            if let Frame::Fn(fx) = frame {
                self.out.fns[fx].body.1 = toks.len();
            }
        }
        self.out
    }

    /// `use a::b::{c, d};` — records `a::b::c` and `a::b::d` (one level of
    /// braces; nested groups record their flattened segments best-effort).
    fn take_use(&mut self, start: usize) -> usize {
        let toks = self.toks;
        let mut i = start + 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut current: Vec<String> = Vec::new();
        while i < toks.len() && toks[i].text != ";" {
            match (toks[i].kind, toks[i].text.as_str()) {
                (TokKind::Ident, id) if id != "as" => current.push(id.to_string()),
                (TokKind::Punct, "{") => {
                    prefix = current.clone();
                }
                (TokKind::Punct, ",") | (TokKind::Punct, "}") => {
                    if !current.is_empty() {
                        self.out.uses.push(current.join("::"));
                    }
                    current = prefix.clone();
                }
                (TokKind::Ident, "as") => {
                    // `use x as y;` — skip the rename ident.
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        if !current.is_empty() && current != prefix {
            self.out.uses.push(current.join("::"));
        }
        i + 1
    }

    /// `static [mut] NAME: …` — the type/initializer is skipped by the
    /// main loop (no frame needed; initializer calls in consts are not
    /// decision-path code).
    fn take_static(&mut self, start: usize) -> usize {
        let toks = self.toks;
        let mut i = start + 1;
        let is_mut = toks.get(i).is_some_and(|t| t.text == "mut");
        if is_mut {
            i += 1;
        }
        if let Some(name) = toks.get(i).filter(|t| t.kind == TokKind::Ident) {
            self.out.statics.push(StaticItem {
                name: name.text.clone(),
                line: name.line,
                is_mut,
            });
            i + 1
        } else {
            start + 1 // `&'static` lifetimes never reach here (Lifetime kind)
        }
    }

    /// Scan an `impl`/`trait` header up to its `{`, extracting the type
    /// and trait names. Returns (index of the `{`, frame).
    fn take_impl_header(&self, start: usize, is_trait: bool) -> (usize, Frame) {
        let toks = self.toks;
        let mut i = start + 1;
        let mut angle = 0i32;
        let mut idents_at_top: Vec<&str> = Vec::new();
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        while i < toks.len() && toks[i].text != "{" && toks[i].text != ";" {
            match (toks[i].kind, toks[i].text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle -= 1,
                (TokKind::Punct, "->") => {}
                (TokKind::Ident, "for") if angle == 0 => saw_for = true,
                (TokKind::Ident, "where") if angle == 0 => break,
                (TokKind::Ident, id) if angle == 0 => {
                    if saw_for && after_for.is_none() && id != "dyn" {
                        after_for = Some(id);
                    }
                    if !saw_for && !matches!(id, "dyn" | "pub" | "unsafe" | "const") {
                        idents_at_top.push(id);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Skip any `where` clause to the `{`.
        while i < toks.len() && toks[i].text != "{" && toks[i].text != ";" {
            i += 1;
        }
        let frame = if is_trait {
            let name = idents_at_top.first().map(|s| s.to_string());
            Frame::Impl(name.clone(), name)
        } else if saw_for {
            Frame::Impl(
                after_for.map(|s| s.to_string()),
                idents_at_top.last().map(|s| s.to_string()),
            )
        } else {
            Frame::Impl(idents_at_top.last().map(|s| s.to_string()), None)
        };
        (i, frame)
    }

    /// `fn name…` — record the item, then either enter its body frame or
    /// consume the `;` of a bodyless trait declaration.
    fn take_fn(
        &mut self,
        start: usize,
        stack: &mut Vec<(usize, Frame)>,
        depth: &mut usize,
    ) -> usize {
        let toks = self.toks;
        let name_tok = &toks[start + 1];
        let (owner, trait_name) = innermost_impl(stack);
        let fx = self.out.fns.len();
        self.out.fns.push(FnItem {
            name: name_tok.text.clone(),
            owner,
            trait_name,
            line: toks[start].line,
            body: (0, 0),
            calls: Vec::new(),
            is_test: self.mask.get(start).copied().unwrap_or(false),
        });
        // Scan past the signature to the body `{` or declaration `;`.
        // Parens and angle brackets nest; a `{` at paren depth 0 is the
        // body (return types never contain a bare `{` at depth 0).
        let mut i = start + 2;
        let mut paren = 0i32;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => {
                    self.out.fns[fx].body = (i + 1, toks.len());
                    stack.push((*depth, Frame::Fn(fx)));
                    *depth += 1;
                    return i + 1;
                }
                ";" if paren == 0 => {
                    self.out.fns[fx].body = (i, i);
                    return i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Classify the token at `k` as a call site, if it is one.
    fn call_at(&self, k: usize) -> Option<Call> {
        let toks = self.toks;
        let t = &toks[k];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            return None;
        }
        // `name(` or `name::<T>(` (turbofish).
        let next = toks.get(k + 1)?;
        let is_call = next.text == "("
            || (next.text == "::" && toks.get(k + 2).is_some_and(|t| t.text == "<"));
        if !is_call {
            return None;
        }
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str());
        let target = match prev {
            Some(".") => {
                let on_self = k >= 2 && toks[k - 2].text == "self";
                CallTarget::Method {
                    name: t.text.clone(),
                    on_self,
                }
            }
            Some("::") if k >= 2 && toks[k - 2].kind == TokKind::Ident => CallTarget::Qualified {
                qualifier: toks[k - 2].text.clone(),
                name: t.text.clone(),
            },
            // `fn name(` is the definition, not a call; the main loop
            // consumed the `fn` token before we got here, so check back.
            Some("fn") => return None,
            _ => CallTarget::Free(t.text.clone()),
        };
        Some(Call {
            line: t.line,
            target,
        })
    }
}

/// Innermost enclosing fn on the stack, if any.
fn innermost_fn(stack: &[(usize, Frame)]) -> Option<usize> {
    stack.iter().rev().find_map(|(_, f)| match f {
        Frame::Fn(fx) => Some(*fx),
        _ => None,
    })
}

/// Innermost enclosing impl/trait on the stack.
fn innermost_impl(stack: &[(usize, Frame)]) -> (Option<String>, Option<String>) {
    for (_, f) in stack.iter().rev() {
        if let Frame::Impl(owner, trait_name) = f {
            return (owner.clone(), trait_name.clone());
        }
    }
    (None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::lex;

    fn parse_src(src: &str) -> FileItems {
        parse("crates/x/src/a.rs", &lex(src))
    }

    #[test]
    fn free_fn_and_calls() {
        let items = parse_src("fn a() { b(); c::d(); e.f(); self.g(); }\nfn b() {}");
        assert_eq!(items.fns.len(), 2);
        let a = &items.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.owner, None);
        let targets: Vec<&CallTarget> = a.calls.iter().map(|c| &c.target).collect();
        assert_eq!(
            targets,
            vec![
                &CallTarget::Free("b".into()),
                &CallTarget::Qualified {
                    qualifier: "c".into(),
                    name: "d".into()
                },
                &CallTarget::Method {
                    name: "f".into(),
                    on_self: false
                },
                &CallTarget::Method {
                    name: "g".into(),
                    on_self: true
                },
            ]
        );
        assert!(items.fns[1].calls.is_empty());
    }

    #[test]
    fn impl_blocks_set_owner_and_trait() {
        let items = parse_src(
            "impl Policy for TetriServePolicy {\n    fn schedule(&mut self) { self.pack(); }\n}\nimpl Helper {\n    fn pack(&self) {}\n}\ntrait Policy {\n    fn schedule(&mut self);\n    fn hint(&self) -> u32 { 0 }\n}",
        );
        let sched = &items.fns[0];
        assert_eq!(sched.name, "schedule");
        assert_eq!(sched.owner.as_deref(), Some("TetriServePolicy"));
        assert_eq!(sched.trait_name.as_deref(), Some("Policy"));
        let pack = &items.fns[1];
        assert_eq!(pack.owner.as_deref(), Some("Helper"));
        assert_eq!(pack.trait_name, None);
        // Trait decl (bodyless) + default method both carry the trait name.
        let decl = &items.fns[2];
        assert_eq!(decl.name, "schedule");
        assert_eq!(decl.owner.as_deref(), Some("Policy"));
        assert_eq!(decl.body.0, decl.body.1);
        let hint = &items.fns[3];
        assert_eq!(hint.owner.as_deref(), Some("Policy"));
        assert!(hint.body.1 > hint.body.0);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let items = parse_src(
            "impl<P: Policy> ClusterSim<P> {\n    fn step(&mut self) { self.drain(); }\n}\nimpl<'a, T> Iterator for Windows<'a, T> where T: Clone {\n    fn next(&mut self) -> Option<T> { None }\n}",
        );
        assert_eq!(items.fns[0].owner.as_deref(), Some("ClusterSim"));
        assert_eq!(items.fns[1].owner.as_deref(), Some("Windows"));
        assert_eq!(items.fns[1].trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn closures_attribute_calls_to_enclosing_fn() {
        let items = parse_src(
            "fn outer() {\n    std::thread::scope(|s| {\n        s.spawn(move || inner());\n    });\n}",
        );
        let outer = &items.fns[0];
        let names: Vec<String> = outer
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free(n) => n.clone(),
                CallTarget::Method { name, .. } => name.clone(),
                CallTarget::Qualified { name, .. } => name.clone(),
            })
            .collect();
        assert!(names.contains(&"scope".to_string()), "{names:?}");
        assert!(names.contains(&"spawn".to_string()));
        assert!(names.contains(&"inner".to_string()));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let items =
            parse_src("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { live(); }\n}");
        assert!(!items.fns[0].is_test);
        assert!(items.fns[1].is_test);
    }

    #[test]
    fn use_edges_including_groups() {
        let items = parse_src(
            "use std::collections::BTreeMap;\nuse tetriserve_core::{policy::Policy, tracker};\nfn f() {}",
        );
        assert!(items
            .uses
            .contains(&"std::collections::BTreeMap".to_string()));
        assert!(items
            .uses
            .contains(&"tetriserve_core::policy::Policy".to_string()));
        assert!(items.uses.contains(&"tetriserve_core::tracker".to_string()));
    }

    #[test]
    fn statics_and_static_mut() {
        let items = parse_src(
            "static TABLE: [u32; 4] = [0; 4];\nstatic mut COUNTER: u64 = 0;\nfn f(s: &'static str) -> &'static str { s }",
        );
        assert_eq!(items.statics.len(), 2);
        assert!(!items.statics[0].is_mut);
        assert!(items.statics[1].is_mut);
        assert_eq!(items.statics[1].name, "COUNTER");
    }

    #[test]
    fn macros_and_fn_pointer_types_are_not_calls() {
        let items = parse_src(
            "fn f(cb: fn(u32) -> u32) -> u32 {\n    vec![1, 2];\n    println!(\"x\");\n    cb(3)\n}",
        );
        let names: Vec<&CallTarget> = items.fns[0].calls.iter().map(|c| &c.target).collect();
        assert_eq!(names, vec![&CallTarget::Free("cb".into())]);
    }

    #[test]
    fn turbofish_calls_are_detected() {
        let items = parse_src("fn f() { parse::<u32>(); x.collect::<Vec<_>>(); }");
        let n: Vec<&CallTarget> = items.fns[0].calls.iter().map(|c| &c.target).collect();
        assert_eq!(
            n,
            vec![
                &CallTarget::Free("parse".into()),
                &CallTarget::Method {
                    name: "collect".into(),
                    on_self: false
                }
            ]
        );
    }

    #[test]
    fn nested_fn_bodies_close_correctly() {
        let items = parse_src(
            "fn outer() {\n    fn inner() { deep(); }\n    after_inner();\n}\nfn last() {}",
        );
        assert_eq!(items.fns.len(), 3);
        let outer = &items.fns[0];
        let inner = &items.fns[1];
        // `deep` belongs to inner; `after_inner` belongs to outer.
        assert!(inner
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Free("deep".into())));
        assert!(outer
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Free("after_inner".into())));
        assert!(!outer
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Free("deep".into())));
    }
}
