//! Interprocedural taint: three sink classes propagated along call edges.
//!
//! The per-file engine ([`crate::rules`]) polices each rule inside a
//! fixed file scope — `unwrap` in hot-path modules, `unordered-iter` in
//! decision-path crates. A decision-path function that *calls* into a
//! helper outside that scope sails straight through it. These passes
//! close that hole: walk the workspace call graph from the entry points
//! that carry each invariant and flag sinks the per-file scoping misses,
//! reporting the full `entry → f → g → sink @ file:line` chain.
//!
//! | rule                | entries                                  | sinks |
//! |---------------------|------------------------------------------|-------|
//! | `taint-determinism` | `Policy::schedule`, `Router::route`, `Rebalancer::plan`, `admission::coordinate` | hash-order iteration in non-decision-path files |
//! | `taint-panic`       | hot-path fns + parallel-lockstep roots   | `unwrap`/`expect`/bare index in non-hot files |
//! | `taint-parallel`    | fns spawning scoped threads              | interior mutability (`RefCell`/`Cell`/`UnsafeCell`/`OnceCell`), `static mut` use, `thread_local` |
//!
//! Sinks the per-file engine already covers in that file are skipped —
//! one site, one rule (wall-clock and ambient-rng fire everywhere
//! per-file, so they never re-fire here; an allowed sink stays allowed,
//! because the taint passes honor the sink's per-file allow as well as
//! their own rule name). Findings are byte-stable: entries and sinks are
//! visited in sorted order and the shortest chain (BFS) is reported.

use std::collections::BTreeSet;

use crate::graph::WorkspaceGraph;
use crate::rules::{self, Allows, ChainHop, Violation};
use crate::tokenizer::{Lexed, Tok, TokKind};

/// Interior-mutability type names that make state thread-unsafe to share
/// without a lock; reaching one from the lockstep closure means the
/// parallel section can observe non-`Sync` shared mutation (the compiler
/// catches actual cross-thread sharing — the lint flags the *reachable
/// risk* so the justification is written down).
const INTERIOR_MUT_TYPES: &[&str] = &["RefCell", "Cell", "UnsafeCell", "OnceCell"];

/// Run all three passes. `files` and `allows` are parallel to
/// `graph.items`; taint findings consume allows at the sink line.
pub(crate) fn run(
    graph: &WorkspaceGraph<'_>,
    files: &[(String, Lexed)],
    allows: &mut [Allows],
) -> Vec<Violation> {
    let ep = graph.entry_points();
    let det_parent = graph.reach(&ep.determinism);
    let panic_parent = graph.reach(&ep.panic);
    let par_parent = graph.reach(&ep.parallel);

    // Workspace-wide `static mut` names (any use is a parallel sink).
    let static_muts: BTreeSet<&str> = graph
        .items
        .iter()
        .flat_map(|f| f.statics.iter())
        .filter(|s| s.is_mut)
        .map(|s| s.name.as_str())
        .collect();

    // Per file: (line range → node) lookup for sink attribution.
    // Innermost fn wins (smallest line span) for nested items.
    let mut fn_spans: Vec<Vec<(u32, u32, usize)>> = vec![Vec::new(); files.len()];
    for (n, &(fi, xi)) in graph.nodes.iter().enumerate() {
        let f = &graph.items[fi].fns[xi];
        let toks = &files[fi].1.tokens;
        if f.body.0 >= f.body.1 {
            continue; // bodyless trait declaration
        }
        let start = f.line;
        let end = toks
            .get(f.body.1.saturating_sub(1))
            .or_else(|| toks.last())
            .map_or(start, |t| t.line);
        fn_spans[fi].push((start, end, n));
    }

    let mut out: Vec<Violation> = Vec::new();
    let mut seen: BTreeSet<(usize, u32, &'static str)> = BTreeSet::new();

    for (fi, (norm, lexed)) in files.iter().enumerate() {
        let basename = norm.rsplit('/').next().unwrap_or(norm);
        let decision_path = rules::DECISION_PATHS.iter().any(|p| norm.contains(p));
        let hot_path = rules::HOT_FILES.contains(&basename);
        let live = rules::live_tokens(lexed);

        // -- taint-determinism: hash-order iteration beyond the per-file
        //    decision-path scope.
        if !decision_path {
            let mut hits: Vec<(u32, &'static str, String)> = Vec::new();
            rules::rule_unordered_iter(&live, &mut hits);
            for (line, _, msg) in hits {
                emit(
                    graph,
                    &fn_spans[fi],
                    &det_parent,
                    fi,
                    line,
                    "taint-determinism",
                    &["taint-determinism", "unordered-iter"],
                    &msg,
                    "a deterministic-scheduling entry point",
                    allows,
                    &mut seen,
                    &mut out,
                );
            }
        }

        // -- taint-panic: unwrap/expect/bare-index beyond the hot files.
        if !hot_path {
            let mut hits: Vec<(u32, &'static str, String)> = Vec::new();
            rules::rule_unwrap(&live, &mut hits);
            for (line, _, msg) in hits {
                emit(
                    graph,
                    &fn_spans[fi],
                    &panic_parent,
                    fi,
                    line,
                    "taint-panic",
                    &["taint-panic", "unwrap"],
                    &msg,
                    "the per-round hot path",
                    allows,
                    &mut seen,
                    &mut out,
                );
            }
            let mut hits: Vec<(u32, &'static str, String)> = Vec::new();
            rules::rule_slice_index(&live, &mut hits);
            for (line, _, msg) in hits {
                emit(
                    graph,
                    &fn_spans[fi],
                    &panic_parent,
                    fi,
                    line,
                    "taint-panic",
                    &["taint-panic", "slice-index"],
                    &msg,
                    "the per-round hot path",
                    allows,
                    &mut seen,
                    &mut out,
                );
            }
        }

        // -- taint-parallel: non-lock shared mutability (no per-file
        //    analogue; scanned everywhere).
        let mut hits: Vec<(u32, &'static str, String)> = Vec::new();
        parallel_sinks(&live, &static_muts, &mut hits);
        for (line, _, msg) in hits {
            emit(
                graph,
                &fn_spans[fi],
                &par_parent,
                fi,
                line,
                "taint-parallel",
                &["taint-parallel"],
                &msg,
                "the parallel lockstep section",
                allows,
                &mut seen,
                &mut out,
            );
        }
    }
    out
}

/// Attribute one sink hit to its enclosing fn, test reachability, apply
/// allows, and push the chain finding.
#[allow(clippy::too_many_arguments)]
fn emit(
    graph: &WorkspaceGraph<'_>,
    spans: &[(u32, u32, usize)],
    parent: &std::collections::BTreeMap<usize, Option<usize>>,
    fi: usize,
    line: u32,
    rule: &'static str,
    allow_names: &[&str],
    sink_msg: &str,
    from_what: &str,
    allows: &mut [Allows],
    seen: &mut BTreeSet<(usize, u32, &'static str)>,
    out: &mut Vec<Violation>,
) {
    // Innermost enclosing fn (smallest span containing the line).
    let Some(&(_, _, node)) = spans
        .iter()
        .filter(|&&(s, e, _)| s <= line && line <= e)
        .min_by_key(|&&(s, e, _)| e - s)
    else {
        return; // module-level code (consts, statics) — not a call target
    };
    if !parent.contains_key(&node) {
        return; // not reachable from this pass's entries
    }
    if !seen.insert((fi, line, rule)) {
        return; // one finding per sink site per pass
    }
    if allows[fi].covers_any(line, allow_names) {
        return;
    }
    let chain: Vec<ChainHop> = graph
        .chain_to(parent, node)
        .into_iter()
        .map(|n| ChainHop {
            func: graph.label_of(n),
            file: graph.file_of(n).to_string(),
            line: graph.fn_item(n).line,
        })
        .collect();
    let via: Vec<String> = chain.iter().map(|h| h.func.clone()).collect();
    let file = graph.items[fi].file.clone();
    // Per-file sink messages assume their own file scope ("in a hot-path
    // module"); here the sink is *outside* that scope by construction.
    let sink_clause = sink_msg
        .split(';')
        .next()
        .unwrap_or(sink_msg)
        .replace(" in a hot-path module", "")
        .replace(" in a decision path", "");
    out.push(Violation {
        message: format!(
            "{} — reachable from {} via `{}` ({} call edge{})",
            sink_clause,
            from_what,
            via.join(" → "),
            chain.len().saturating_sub(1),
            if chain.len() == 2 { "" } else { "s" },
        ),
        file,
        line,
        rule,
        chain,
    });
}

/// Parallel-pass sink detector: interior-mutability types in use
/// (constructor `::` or type-argument `<` position — a bare import never
/// fires), any reference to a `static mut` item, and `thread_local`
/// state.
fn parallel_sinks(
    toks: &[&Tok],
    static_muts: &BTreeSet<&str>,
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if INTERIOR_MUT_TYPES.contains(&t.text.as_str()) {
            let used = toks
                .get(k + 1)
                .is_some_and(|n| n.text == "::" || n.text == "<");
            // `use std::cell::RefCell;` has `::` *before* the name and a
            // `;` after — only constructor/type positions count.
            let imported = k >= 1
                && toks[k - 1].text == "::"
                && toks
                    .get(k + 1)
                    .is_some_and(|n| n.text == ";" || n.text == "," || n.text == "}");
            if used && !imported {
                out.push((
                    t.line,
                    "taint-parallel",
                    format!(
                        "`{}` is non-Sync interior mutability; state shared into the \
                         parallel lockstep section must be per-cluster or lock-protected",
                        t.text
                    ),
                ));
            }
        } else if t.text == "thread_local" {
            out.push((
                t.line,
                "taint-parallel",
                "`thread_local` state diverges across lockstep worker threads; \
                 per-cluster state must live in the cluster, not the thread"
                    .to_string(),
            ));
        } else if static_muts.contains(t.text.as_str()) {
            out.push((
                t.line,
                "taint-parallel",
                format!(
                    "`{}` is a `static mut` — unsynchronized global state on the \
                     parallel lockstep path",
                    t.text
                ),
            ));
        }
    }
}
