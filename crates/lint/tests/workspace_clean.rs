//! The self-check: the workspace itself must be lint-clean.
//!
//! This is the test that makes `tetrilint` an enforced invariant rather
//! than an opt-in tool — `cargo test` fails the moment someone
//! reintroduces wall-clock reads, unordered map iteration in a decision
//! path, an unjustified hot-path `unwrap`, or float `==`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR = <repo>/crates/lint → the repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up");
    let report = tetriserve_lint::scan_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 20,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    // Every allow annotation must still be load-bearing; stale ones are
    // deleted, not accumulated.
    let stale: Vec<_> = report.allows.iter().filter(|a| !a.used).collect();
    assert!(stale.is_empty(), "unused tetrilint allows: {stale:#?}");
}
