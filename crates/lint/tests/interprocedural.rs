//! Acceptance tests for the workspace-level analysis (DESIGN.md §16).
//!
//! Two invariants are pinned here:
//!
//! 1. **The fixture pair** — a sink the per-file engine is blind to
//!    (an `unwrap` outside the hot-path basenames) must be caught by the
//!    interprocedural pass once a hot-path entry reaches it, and the
//!    finding must carry the full ≥2-edge call chain.
//! 2. **The graph self-check** — the symbol graph must cover every file
//!    the linter scans, and every structural entry-point class must be
//!    discovered in the real workspace. Discovery is by name (`Policy::
//!    schedule`, `Router::route`, `Rebalancer::plan`, the admission
//!    coordinator, the stage dispatcher `plan_stage_dispatch`, the
//!    lockstep spawners), so a rename that orphans an entry point fails
//!    here instead of silently hollowing the analysis.

use std::collections::BTreeSet;
use std::path::Path;

use tetriserve_lint::{analyze_sources, graph, parser, scan_source, tokenizer, workspace_sources};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
}

/// The entry lives in a hot-path file but contains no sink; the sink
/// lives two call edges away in a file the per-file `unwrap` rule does
/// not cover. Per-file: 0 findings on both. Interprocedural: exactly one
/// `taint-panic` with the `plan_round → resolve → lookup` chain.
#[test]
fn fixture_pair_per_file_blind_interprocedural_sees() {
    let hot_label = "crates/core/src/dp.rs";
    let hot_src = "pub fn plan_round(xs: &[u32]) -> u32 {\n    resolve(xs)\n}\n";
    let cold_label = "crates/core/src/support.rs";
    let cold_src = "pub fn resolve(xs: &[u32]) -> u32 {\n    lookup(xs)\n}\n\nfn lookup(xs: &[u32]) -> u32 {\n    xs.first().copied().unwrap()\n}\n";

    // The old per-file engine finds nothing in either file on its own.
    let hot_scan = scan_source(hot_label, hot_src);
    assert!(
        hot_scan.violations.is_empty(),
        "per-file engine should be clean on the entry file: {:?}",
        hot_scan.violations
    );
    let cold_scan = scan_source(cold_label, cold_src);
    assert!(
        cold_scan.violations.is_empty(),
        "per-file engine should be blind to the off-hot-path unwrap: {:?}",
        cold_scan.violations
    );

    // The workspace analysis connects entry to sink across the files.
    let report = analyze_sources(&[
        (hot_label.to_owned(), hot_src.to_owned()),
        (cold_label.to_owned(), cold_src.to_owned()),
    ]);
    assert_eq!(
        report.violations.len(),
        1,
        "expected exactly the interprocedural finding:\n{}",
        report.render_text()
    );
    let v = &report.violations[0];
    assert_eq!(v.rule, "taint-panic");
    assert_eq!(v.file, cold_label);
    assert!(
        v.chain.len() >= 3,
        "chain must span at least two call edges (entry, mid, sink), got {:?}",
        v.chain
    );
    let hops: Vec<&str> = v.chain.iter().map(|h| h.func.as_str()).collect();
    assert_eq!(hops, vec!["plan_round", "resolve", "lookup"]);
    assert_eq!(v.chain[0].file, hot_label);
    assert_eq!(v.chain[2].file, cold_label);
    // The chain also survives the JSON round into `tetrilint/v2`.
    let json = report.render_json();
    assert!(json.contains("\"tetrilint/v2\""), "schema tag missing");
    assert!(json.contains("\"chain\""), "chain field missing from JSON");
    assert!(
        json.contains("\"plan_round\""),
        "entry hop missing from JSON"
    );
}

/// The symbol graph must be built from exactly the files the linter
/// scans, every load-bearing module must contribute nodes, and all three
/// entry-point classes must be non-empty with their structural anchors
/// present by name.
#[test]
fn workspace_graph_covers_every_file_and_all_entry_classes() {
    let sources = workspace_sources(repo_root()).expect("workspace sources readable");
    assert!(sources.len() > 20, "source sweep looks truncated");

    let lexed: Vec<(String, tokenizer::Lexed)> = sources
        .iter()
        .map(|(label, src)| (label.clone(), tokenizer::lex(src)))
        .collect();
    let items: Vec<parser::FileItems> = lexed
        .iter()
        .map(|(label, lx)| parser::parse(label, lx))
        .collect();
    // One item table per scanned file, labels in lockstep.
    assert_eq!(items.len(), sources.len());
    for (it, (label, _)) in items.iter().zip(&sources) {
        assert_eq!(&it.file, label);
    }

    let wg = graph::build(&items);
    assert!(!wg.nodes.is_empty());
    assert_eq!(wg.edges.len(), wg.nodes.len());

    // Every file that defines functions must contribute graph nodes —
    // a file the parser silently fails on would vanish from the
    // analysis without this.
    let files_with_nodes: BTreeSet<&str> = (0..wg.nodes.len()).map(|n| wg.file_of(n)).collect();
    for (it, (label, src)) in items.iter().zip(&sources) {
        if it.fns.is_empty() {
            assert!(
                !src.contains("fn "),
                "{label}: parser found no functions but the source has `fn` items"
            );
        } else {
            assert!(
                files_with_nodes.contains(label.as_str()),
                "{label}: parsed functions but contributed no graph nodes"
            );
        }
    }
    // The modules the taint passes exist to police must all be present.
    for must in [
        "crates/core/src/scheduler.rs",
        "crates/core/src/dp.rs",
        "crates/core/src/batching.rs",
        "crates/core/src/server.rs",
        "crates/core/src/stage.rs",
        "crates/simulator/src/engine.rs",
        "crates/fleet/src/driver.rs",
        "crates/fleet/src/router.rs",
        "crates/fleet/src/rebalance.rs",
        "crates/fleet/src/admission.rs",
        "crates/traffic/src/source.rs",
        "crates/traffic/src/coupler.rs",
    ] {
        assert!(
            files_with_nodes.contains(must),
            "{must} contributed no graph nodes"
        );
    }

    // All three entry classes discovered, with their anchors by name. A
    // rename (e.g. `schedule` → `plan_round`) must fail one of these.
    let ep = wg.entry_points();
    assert!(!ep.determinism.is_empty(), "no determinism entry points");
    assert!(!ep.panic.is_empty(), "no panic entry points");
    assert!(!ep.parallel.is_empty(), "no parallel entry points");

    let det: BTreeSet<String> = ep.determinism.iter().map(|&n| wg.label_of(n)).collect();
    assert!(
        det.contains("TetriServePolicy::schedule"),
        "Policy::schedule root missing: {det:?}"
    );
    assert!(
        det.contains("RoundRobinRouter::route") && det.contains("PowerOfTwoRouter::route"),
        "Router::route roots missing: {det:?}"
    );
    assert!(
        det.contains("EdfRebalancer::plan"),
        "Rebalancer::plan root missing: {det:?}"
    );
    assert!(
        det.contains("coordinate"),
        "admission coordinator root missing: {det:?}"
    );
    assert!(
        det.contains("ReplaySource::next_spec") && det.contains("StreamingArrivals::next_spec"),
        "ArrivalSource::next_spec streaming-pull roots missing: {det:?}"
    );
    assert!(
        det.contains("plan_stage_dispatch"),
        "stage dispatcher root missing: {det:?}"
    );

    // Every hot-path basename present in the workspace roots the panic
    // pass, and the fleet lockstep spawner is a parallel root.
    let panic_files: BTreeSet<&str> = ep
        .panic
        .iter()
        .map(|&n| {
            let f = wg.file_of(n);
            f.rsplit('/').next().unwrap_or(f)
        })
        .collect();
    for base in graph::ROUND_LOOP_FILES {
        assert!(
            panic_files.contains(base),
            "hot-path file {base} roots no panic entry: {panic_files:?}"
        );
    }
    assert!(
        ep.parallel
            .iter()
            .any(|&n| wg.file_of(n) == "crates/fleet/src/driver.rs"),
        "fleet lockstep spawner is not a parallel root"
    );
}
