//! Lockstep arbitration for multi-engine co-simulation.
//!
//! The fleet layer advances several independent [`crate::event`] queues —
//! one per cluster — under a single virtual clock. Determinism requires a
//! total order over "which simulation acts next": the earliest pending
//! time wins, and on ties the lowest source index wins. That arbitration
//! rule lives here so it can be tested in isolation and reused by any
//! future multi-engine driver.

use crate::time::SimTime;

/// Picks the next source to advance: the one with the earliest pending
/// time; ties break to the lowest index. Sources with `None` (nothing
/// pending) never win. Returns `(index, time)` or `None` when every
/// source is drained.
pub fn next_source(pending: &[Option<SimTime>]) -> Option<(usize, SimTime)> {
    let mut best: Option<(usize, SimTime)> = None;
    for (i, t) in pending.iter().enumerate() {
        let Some(t) = *t else { continue };
        match best {
            Some((_, bt)) if bt <= t => {}
            _ => best = Some((i, t)),
        }
    }
    best
}

/// A monotonic global clock for lockstep drivers: refuses to move
/// backwards, which turns subtle arbitration bugs into loud panics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalClock {
    now: SimTime,
}

impl GlobalClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        GlobalClock::default()
    }

    /// The current global time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time — lockstep
    /// arbitration must never deliver events out of order.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "global clock moved backwards: {} < {}",
            to,
            self.now
        );
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn earliest_time_wins() {
        let pending = vec![Some(t(30)), Some(t(10)), Some(t(20))];
        assert_eq!(next_source(&pending), Some((1, t(10))));
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let pending = vec![Some(t(10)), Some(t(10)), Some(t(10))];
        assert_eq!(next_source(&pending), Some((0, t(10))));
        let pending = vec![None, Some(t(10)), Some(t(10))];
        assert_eq!(next_source(&pending), Some((1, t(10))));
    }

    #[test]
    fn drained_sources_never_win() {
        assert_eq!(next_source(&[]), None);
        assert_eq!(next_source(&[None, None]), None);
        let pending = vec![None, Some(t(5)), None];
        assert_eq!(next_source(&pending), Some((1, t(5))));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut clock = GlobalClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(t(10));
        clock.advance_to(t(10));
        clock.advance_to(t(25));
        assert_eq!(clock.now(), t(25));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_time_travel() {
        let mut clock = GlobalClock::new();
        clock.advance_to(t(10));
        clock.advance_to(t(9));
    }
}
