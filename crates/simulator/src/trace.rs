//! Execution trace.
//!
//! The engine records everything that happens on the simulated cluster. The
//! metrics crate post-processes traces into the paper's figures: dispatch
//! records carry the sequence-parallel degree per executed step (Figure 11),
//! latent-transfer records carry the per-hand-off overhead (Table 4), and
//! stall records quantify what GPU placement preservation saves (Table 5).

use crate::gpuset::GpuSet;
use crate::time::{SimDuration, SimTime};

/// Identifier of a serving request, assigned by the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Identifier of the tenant (workload stream) a request belongs to.
///
/// Tenancy is *attribution only*: schedulers, routers and rebalancers must
/// never branch on it (the lint's determinism pass polices this), but the
/// metrics layer groups outcomes by tenant to report per-tenant SLO
/// attainment and fleet-level fairness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// Sentinel for requests produced before tenancy existed (synthetic
    /// single-stream workloads, hand-built test specs). Untagged requests
    /// aggregate into one pseudo-tenant in per-tenant reports.
    pub const UNTAGGED: TenantId = TenantId(u32::MAX);

    /// Whether this id is the [`TenantId::UNTAGGED`] sentinel.
    pub fn is_untagged(self) -> bool {
        self == TenantId::UNTAGGED
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::UNTAGGED
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_untagged() {
            write!(f, "tenant?")
        } else {
            write!(f, "tenant{}", self.0)
        }
    }
}

/// Identifier of one engine dispatch (a contiguous run of steps on a fixed
/// GPU set, possibly batched over several requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DispatchId(pub u64);

/// One recorded cluster event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A dispatch began executing.
    DispatchStart {
        /// When execution (after stalls/warm-up) began.
        time: SimTime,
        /// The dispatch identifier.
        dispatch: DispatchId,
        /// Batched requests advancing together.
        requests: Vec<RequestId>,
        /// GPUs executing the dispatch.
        gpus: GpuSet,
        /// Number of diffusion steps executed.
        steps: u32,
        /// Actual (jittered) mean per-step latency.
        per_step: SimDuration,
    },
    /// A dispatch ran all its steps.
    DispatchDone {
        /// Completion time of the last step.
        time: SimTime,
        /// The dispatch identifier.
        dispatch: DispatchId,
    },
    /// A dispatch was killed mid-flight because a member GPU went down.
    /// Steps completed before the fault are checkpointed (the trace's
    /// paired `DispatchStart` records only those); everything else —
    /// pre-start stalls and the partially executed step — is wasted.
    DispatchAborted {
        /// The fault instant (the GPUs stop here).
        time: SimTime,
        /// The aborted dispatch.
        dispatch: DispatchId,
        /// The member GPUs that were down at the fault instant.
        down: GpuSet,
        /// Diffusion steps that completed before the fault.
        completed_steps: u32,
        /// GPU-seconds burned without producing a completed step
        /// (summed over all member GPUs).
        wasted_gpu_seconds: f64,
    },
    /// A request finished every diffusion step and its VAE decode.
    RequestDone {
        /// End-to-end completion time.
        time: SimTime,
        /// The finished request.
        request: RequestId,
    },
    /// A latent moved between GPU groups because the placement changed.
    LatentTransfer {
        /// When the transfer started.
        time: SimTime,
        /// The request whose latent moved.
        request: RequestId,
        /// Latent size.
        bytes: u64,
        /// Time the transfer took.
        duration: SimDuration,
    },
    /// One scheduler pass ran (round boundary, arrival, or completion
    /// backfill). The perf harness aggregates these into per-round
    /// wall-clock figures (Table 6); `wall` is *host* time — the only
    /// field in the trace measured off the simulated clock.
    SchedPass {
        /// Simulated time of the pass.
        time: SimTime,
        /// Requests the scheduler could see (active, not finished).
        queue_depth: usize,
        /// Dispatch plans the pass emitted.
        plans: usize,
        /// Host wall-clock time spent inside `Policy::schedule`.
        wall: std::time::Duration,
    },
    /// A queued request left this cluster for another one (fleet
    /// rebalancing). The paired [`TraceEvent::MigrationIn`] appears in the
    /// *target* cluster's trace once the latent hand-off completes.
    MigrationOut {
        /// When the request was extracted.
        time: SimTime,
        /// The migrated request.
        request: RequestId,
        /// Diffusion steps it still had to run.
        remaining_steps: u32,
    },
    /// A request migrated in from another cluster finished its latent
    /// hand-off and re-entered this cluster's queue.
    MigrationIn {
        /// When the hand-off completed (extraction time + delay).
        time: SimTime,
        /// The migrated request.
        request: RequestId,
        /// Latent bytes shipped (0 for a fresh request).
        bytes: u64,
        /// The cross-cluster hand-off delay that was charged.
        delay: SimDuration,
    },
    /// A dispatch was delayed before starting (remap stall or group warm-up).
    Stall {
        /// When the stall began.
        time: SimTime,
        /// The affected dispatch.
        dispatch: DispatchId,
        /// Stall length.
        duration: SimDuration,
        /// Why the dispatch stalled.
        reason: StallReason,
    },
}

/// Why a dispatch could not start immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The request moved to a different GPU set and had to re-establish its
    /// distributed context.
    Remap,
    /// First collective on a cold process group (NCCL channel init).
    GroupWarmup,
}

/// An append-only log of [`TraceEvent`]s in non-decreasing time order per
/// producer.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over dispatch-start records.
    pub fn dispatch_starts(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DispatchStart { .. }))
    }

    /// Total latent-transfer time charged to `request`.
    pub fn latent_transfer_total(&self, request: RequestId) -> SimDuration {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::LatentTransfer {
                    request: r,
                    duration,
                    ..
                } if *r == request => Some(*duration),
                _ => None,
            })
            .sum()
    }

    /// Number of dispatches killed by GPU faults.
    pub fn aborted_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DispatchAborted { .. }))
            .count()
    }

    /// Total GPU-seconds wasted across all aborted dispatches.
    pub fn wasted_gpu_seconds(&self) -> f64 {
        // fold, not sum: `Sum for f64` seeds with -0.0, which would make a
        // clean trace report "-0.000" wasted seconds.
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::DispatchAborted {
                    wasted_gpu_seconds, ..
                } => Some(*wasted_gpu_seconds),
                _ => None,
            })
            .fold(0.0, |acc, w| acc + w)
    }

    /// Number of scheduler passes recorded.
    pub fn sched_pass_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SchedPass { .. }))
            .count()
    }

    /// Total host wall-clock time spent inside the scheduler across all
    /// recorded passes.
    pub fn sched_wall_total(&self) -> std::time::Duration {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SchedPass { wall, .. } => Some(*wall),
                _ => None,
            })
            .sum()
    }

    /// Number of requests migrated *out of* this cluster.
    pub fn migration_out_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MigrationOut { .. }))
            .count()
    }

    /// Number of requests migrated *into* this cluster.
    pub fn migration_in_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::MigrationIn { .. }))
            .count()
    }

    /// Total cross-cluster hand-off delay charged to inbound migrations.
    pub fn handoff_delay_total(&self) -> SimDuration {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MigrationIn { delay, .. } => Some(*delay),
                _ => None,
            })
            .sum()
    }

    /// Total stall time across all dispatches, broken down by reason.
    pub fn stall_totals(&self) -> (SimDuration, SimDuration) {
        let mut remap = SimDuration::ZERO;
        let mut warmup = SimDuration::ZERO;
        for e in &self.events {
            if let TraceEvent::Stall {
                duration, reason, ..
            } = e
            {
                match reason {
                    StallReason::Remap => remap += *duration,
                    StallReason::GroupWarmup => warmup += *duration,
                }
            }
        }
        (remap, warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_events() {
        let mut t = Trace::new();
        t.record(TraceEvent::DispatchStart {
            time: SimTime::ZERO,
            dispatch: DispatchId(0),
            requests: vec![RequestId(1)],
            gpus: GpuSet::contiguous(0, 2),
            steps: 5,
            per_step: SimDuration::from_millis(10),
        });
        t.record(TraceEvent::LatentTransfer {
            time: SimTime::from_millis(1),
            request: RequestId(1),
            bytes: 1024,
            duration: SimDuration::from_micros(30),
        });
        t.record(TraceEvent::LatentTransfer {
            time: SimTime::from_millis(2),
            request: RequestId(2),
            bytes: 1024,
            duration: SimDuration::from_micros(99),
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.dispatch_starts().count(), 1);
        assert_eq!(
            t.latent_transfer_total(RequestId(1)),
            SimDuration::from_micros(30)
        );
    }

    #[test]
    fn stall_totals_split_by_reason() {
        let mut t = Trace::new();
        for (d, reason) in [
            (5u64, StallReason::Remap),
            (7, StallReason::GroupWarmup),
            (3, StallReason::Remap),
        ] {
            t.record(TraceEvent::Stall {
                time: SimTime::ZERO,
                dispatch: DispatchId(0),
                duration: SimDuration::from_millis(d),
                reason,
            });
        }
        let (remap, warm) = t.stall_totals();
        assert_eq!(remap, SimDuration::from_millis(8));
        assert_eq!(warm, SimDuration::from_millis(7));
    }

    #[test]
    fn sched_pass_totals() {
        let mut t = Trace::new();
        for (ms, depth, plans) in [(0u64, 4usize, 2usize), (100, 7, 3)] {
            t.record(TraceEvent::SchedPass {
                time: SimTime::from_millis(ms),
                queue_depth: depth,
                plans,
                wall: std::time::Duration::from_micros(50),
            });
        }
        assert_eq!(t.sched_pass_count(), 2);
        assert_eq!(t.sched_wall_total(), std::time::Duration::from_micros(100));
        // Other accumulators ignore scheduler passes.
        assert_eq!(t.aborted_count(), 0);
    }

    #[test]
    fn empty_trace_queries() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.latent_transfer_total(RequestId(0)), SimDuration::ZERO);
        assert_eq!(t.aborted_count(), 0);
        assert_eq!(t.wasted_gpu_seconds(), 0.0);
        // Positive zero specifically: -0.0 would render as "-0.000".
        assert!(t.wasted_gpu_seconds().is_sign_positive());
    }

    #[test]
    fn migration_totals_accumulate() {
        let mut t = Trace::new();
        t.record(TraceEvent::MigrationOut {
            time: SimTime::from_millis(10),
            request: RequestId(1),
            remaining_steps: 30,
        });
        t.record(TraceEvent::MigrationIn {
            time: SimTime::from_millis(11),
            request: RequestId(2),
            bytes: 1 << 20,
            delay: SimDuration::from_micros(300),
        });
        t.record(TraceEvent::MigrationIn {
            time: SimTime::from_millis(12),
            request: RequestId(3),
            bytes: 0,
            delay: SimDuration::from_micros(250),
        });
        assert_eq!(t.migration_out_count(), 1);
        assert_eq!(t.migration_in_count(), 2);
        assert_eq!(t.handoff_delay_total(), SimDuration::from_micros(550));
        // Migrations are not latent transfers (those are intra-cluster).
        assert_eq!(t.latent_transfer_total(RequestId(2)), SimDuration::ZERO);
    }

    #[test]
    fn abort_totals_accumulate() {
        let mut t = Trace::new();
        for (d, wasted) in [(0u64, 0.25), (1, 1.5)] {
            t.record(TraceEvent::DispatchAborted {
                time: SimTime::from_millis(100),
                dispatch: DispatchId(d),
                down: GpuSet::single(crate::gpuset::GpuId(3)),
                completed_steps: 4,
                wasted_gpu_seconds: wasted,
            });
        }
        assert_eq!(t.aborted_count(), 2);
        assert!((t.wasted_gpu_seconds() - 1.75).abs() < 1e-12);
    }
}
