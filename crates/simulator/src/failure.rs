//! Failure and degradation injection.
//!
//! Real clusters misbehave: a GPU thermally throttles, a link flaps, a
//! neighbour tenant saturates the switch — and sometimes a GPU falls off
//! the bus entirely. The serving stack should degrade gracefully rather
//! than collapse. This module injects two failure classes:
//!
//! * **Stragglers** — per-GPU multiplicative slowdowns active during a time
//!   window — which the engine folds into dispatch execution: a
//!   sequence-parallel step runs at the pace of its slowest member, so one
//!   throttled GPU drags every group it joins (exactly why placement
//!   matters).
//! * **Performance faults** ([`PerfFault`]) — the generalised slowdown
//!   taxonomy: a transient *straggler* (ECC retries, a neighbour on the
//!   switch), a *throttle* (thermal/power capping) or a permanent
//!   *brownout* (a device that will run slow until it is swapped,
//!   `until = None`). All three degrade through the same multiplicative
//!   factor and compose with [`Straggler`]s by max.
//! * **Hard faults** ([`GpuFault`]) — a GPU goes *down* at a point in time,
//!   either transiently (XID reset, driver restart: it recovers at
//!   `up_at`) or permanently (`up_at = None`). A dispatch whose group
//!   contains a down GPU aborts at the fault instant; the scheduler must
//!   re-plan around the hole.

use crate::gpuset::{GpuId, GpuSet};
use crate::time::SimTime;

/// Whether a `[from, until)` window covers `time` (half-open semantics
/// shared by stragglers and fault outages).
pub fn is_active_at(from: SimTime, until: Option<SimTime>, time: SimTime) -> bool {
    time >= from && until.is_none_or(|u| time < u)
}

/// A per-GPU slowdown over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The degraded GPU.
    pub gpu: GpuId,
    /// Multiplicative step-time factor (> 1 = slower). A factor of 2.0
    /// halves the GPU's effective throughput.
    pub slowdown: f64,
    /// When the degradation begins.
    pub from: SimTime,
    /// When the degradation ends (exclusive).
    pub until: SimTime,
}

impl Straggler {
    /// Creates a straggler.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1.0` or the window is empty.
    pub fn new(gpu: GpuId, slowdown: f64, from: SimTime, until: SimTime) -> Self {
        assert!(
            slowdown >= 1.0 && slowdown.is_finite(),
            "slowdown must be ≥ 1.0, got {slowdown}"
        );
        assert!(from < until, "straggler window must be non-empty");
        Straggler {
            gpu,
            slowdown,
            from,
            until,
        }
    }

    /// Whether the straggler affects `gpu` at `time`.
    pub fn affects(&self, gpu: GpuId, time: SimTime) -> bool {
        self.gpu == gpu && is_active_at(self.from, Some(self.until), time)
    }
}

/// The physical cause of a [`PerfFault`]. All kinds degrade identically
/// through the multiplicative factor; the kind is taxonomy for traces and
/// chaos-schedule reporting, not behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfFaultKind {
    /// A transient per-device slowdown (ECC retries, noisy neighbour).
    Straggler,
    /// Thermal or power capping over a window.
    Throttle,
    /// A permanent degradation: the device runs slow until replaced.
    Brownout,
}

/// A multiplicative slowdown on one GPU over a time window — the
/// generalisation of [`Straggler`] that also covers open-ended windows
/// (`until = None`: a permanent brownout).
///
/// Composes with [`Straggler`]s and other `PerfFault`s by *max* inside
/// [`FailurePlan::group_slowdown`]; the factor is validated at
/// construction to be finite and ≥ 1.0, so the effective speed
/// `1.0 / factor` is always in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfFault {
    /// The degraded GPU.
    pub gpu: GpuId,
    /// Multiplicative step-time factor (> 1 = slower).
    pub factor: f64,
    /// When the degradation begins.
    pub from: SimTime,
    /// When the degradation ends (exclusive), or `None` for a permanent
    /// brownout.
    pub until: Option<SimTime>,
    /// What kind of degradation this models.
    pub kind: PerfFaultKind,
}

impl PerfFault {
    fn checked(
        gpu: GpuId,
        factor: f64,
        from: SimTime,
        until: Option<SimTime>,
        kind: PerfFaultKind,
    ) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be ≥ 1.0 and finite, got {factor}"
        );
        if let Some(u) = until {
            assert!(from < u, "perf-fault window must be non-empty");
        }
        PerfFault {
            gpu,
            factor,
            from,
            until,
            kind,
        }
    }

    /// A transient straggler over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`, `factor` is not finite, or the window is
    /// empty.
    pub fn straggler(gpu: GpuId, factor: f64, from: SimTime, until: SimTime) -> Self {
        PerfFault::checked(gpu, factor, from, Some(until), PerfFaultKind::Straggler)
    }

    /// A thermal/power throttle over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`, `factor` is not finite, or the window is
    /// empty.
    pub fn throttle(gpu: GpuId, factor: f64, from: SimTime, until: SimTime) -> Self {
        PerfFault::checked(gpu, factor, from, Some(until), PerfFaultKind::Throttle)
    }

    /// A permanent brownout starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` or `factor` is not finite.
    pub fn brownout(gpu: GpuId, factor: f64, from: SimTime) -> Self {
        PerfFault::checked(gpu, factor, from, None, PerfFaultKind::Brownout)
    }

    /// Whether the fault affects `gpu` at `time`.
    pub fn affects(&self, gpu: GpuId, time: SimTime) -> bool {
        self.gpu == gpu && is_active_at(self.from, self.until, time)
    }
}

/// A hard GPU outage: the GPU is unusable from `down_from` until `up_at`
/// (exclusive), or forever when `up_at` is `None` (permanent loss).
///
/// Any dispatch whose group contains the GPU at the moment it goes down is
/// aborted by the engine; submitting onto a down GPU is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuFault {
    /// The failed GPU.
    pub gpu: GpuId,
    /// When the GPU goes down.
    pub down_from: SimTime,
    /// When the GPU comes back (exclusive), or `None` for permanent loss.
    pub up_at: Option<SimTime>,
}

impl GpuFault {
    /// A transient outage over `[down_from, up_at)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn transient(gpu: GpuId, down_from: SimTime, up_at: SimTime) -> Self {
        assert!(down_from < up_at, "fault window must be non-empty");
        GpuFault {
            gpu,
            down_from,
            up_at: Some(up_at),
        }
    }

    /// A permanent loss starting at `down_from`.
    pub fn permanent(gpu: GpuId, down_from: SimTime) -> Self {
        GpuFault {
            gpu,
            down_from,
            up_at: None,
        }
    }

    /// Whether the GPU is down at `time`.
    pub fn is_down_at(&self, time: SimTime) -> bool {
        is_active_at(self.down_from, self.up_at, time)
    }
}

/// A whole-cluster outage for fleet-level co-simulation: every GPU of the
/// named cluster goes down at `down_from` (a rack power or network-fabric
/// event rather than a single device falling off the bus).
///
/// The fleet driver expands an outage into per-GPU [`GpuFault`]s on the
/// affected cluster's failure plan — so the cluster's own engine aborts
/// in-flight dispatches and its policy sees zero healthy GPUs through the
/// ordinary single-cluster machinery — and additionally re-routes the
/// cluster's queued-but-unstarted requests to surviving clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOutage {
    /// Index of the affected cluster in the fleet.
    pub cluster: usize,
    /// When the cluster goes dark.
    pub down_from: SimTime,
    /// When it returns (exclusive), or `None` for a permanent loss.
    pub up_at: Option<SimTime>,
}

impl ClusterOutage {
    /// A transient outage over `[down_from, up_at)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn transient(cluster: usize, down_from: SimTime, up_at: SimTime) -> Self {
        assert!(down_from < up_at, "outage window must be non-empty");
        ClusterOutage {
            cluster,
            down_from,
            up_at: Some(up_at),
        }
    }

    /// A permanent loss starting at `down_from`.
    pub fn permanent(cluster: usize, down_from: SimTime) -> Self {
        ClusterOutage {
            cluster,
            down_from,
            up_at: None,
        }
    }

    /// Whether the cluster is dark at `time`.
    pub fn is_down_at(&self, time: SimTime) -> bool {
        is_active_at(self.down_from, self.up_at, time)
    }

    /// Expands the outage into one [`GpuFault`] per GPU of an
    /// `n_gpus`-wide cluster.
    pub fn to_gpu_faults(&self, n_gpus: usize) -> Vec<GpuFault> {
        (0..n_gpus)
            .map(|g| GpuFault {
                gpu: GpuId(g),
                down_from: self.down_from,
                up_at: self.up_at,
            })
            .collect()
    }
}

/// A set of injected degradations and outages.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    stragglers: Vec<Straggler>,
    perf_faults: Vec<PerfFault>,
    faults: Vec<GpuFault>,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a straggler.
    pub fn with_straggler(mut self, s: Straggler) -> Self {
        self.stragglers.push(s);
        self
    }

    /// Adds a performance fault.
    pub fn with_perf_fault(mut self, p: PerfFault) -> Self {
        self.perf_faults.push(p);
        self
    }

    /// Adds a hard fault.
    pub fn with_fault(mut self, f: GpuFault) -> Self {
        self.faults.push(f);
        self
    }

    /// Whether any degradation or outage is configured.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty() && self.perf_faults.is_empty() && self.faults.is_empty()
    }

    /// Whether any slowdown (straggler or perf fault) is configured at
    /// all; cheap gate for schedulers that want to skip the
    /// effective-speed machinery on fault-free runs.
    pub fn has_slowdowns(&self) -> bool {
        !self.stragglers.is_empty() || !self.perf_faults.is_empty()
    }

    /// The slowdown of a single GPU at `time`: the maximum over its
    /// active stragglers and perf faults, base 1.0. Always finite and
    /// ≥ 1.0.
    pub fn slowdown(&self, gpu: GpuId, time: SimTime) -> f64 {
        let mut factor = 1.0f64;
        for s in &self.stragglers {
            if s.affects(gpu, time) {
                factor = factor.max(s.slowdown);
            }
        }
        for p in &self.perf_faults {
            if p.affects(gpu, time) {
                factor = factor.max(p.factor);
            }
        }
        factor
    }

    /// The effective speed of a single GPU at `time`: `1 / slowdown`,
    /// always in `(0, 1]`. A *down* GPU still reports its slowdown-based
    /// speed — hard-fault state is a separate axis queried via
    /// [`FailurePlan::is_down`].
    pub fn effective_speed(&self, gpu: GpuId, time: SimTime) -> f64 {
        1.0 / self.slowdown(gpu, time)
    }

    /// Effective serving capacity of a GPU set at `time` in
    /// "nominal-GPU" units: the sum of `effective_speed` over members
    /// that are *up*, so a fault-free set of `n` GPUs reports exactly
    /// `n as f64` and digests of degradation-free runs are unchanged.
    pub fn effective_capacity(&self, gpus: GpuSet, time: SimTime) -> f64 {
        let mut cap = 0.0f64;
        for g in gpus.iter() {
            if !self.is_down(g, time) {
                cap += self.effective_speed(g, time);
            }
        }
        cap
    }

    /// The execution slowdown of a group dispatch running at `time`:
    /// the *maximum* member slowdown, because a sequence-parallel step
    /// synchronises on its slowest shard. Stragglers and perf faults
    /// compose by the same max.
    pub fn group_slowdown(&self, gpus: GpuSet, time: SimTime) -> f64 {
        let mut factor = 1.0f64;
        for s in &self.stragglers {
            if gpus.iter().any(|g| s.affects(g, time)) {
                factor = factor.max(s.slowdown);
            }
        }
        for p in &self.perf_faults {
            if gpus.iter().any(|g| p.affects(g, time)) {
                factor = factor.max(p.factor);
            }
        }
        factor
    }

    /// Whether `gpu` is down at `time`.
    pub fn is_down(&self, gpu: GpuId, time: SimTime) -> bool {
        self.faults
            .iter()
            .any(|f| f.gpu == gpu && f.is_down_at(time))
    }

    /// The set of GPUs down at `time`.
    pub fn down_gpus(&self, time: SimTime) -> GpuSet {
        self.faults
            .iter()
            .filter(|f| f.is_down_at(time))
            .map(|f| f.gpu)
            .collect()
    }

    /// The earliest instant in `[from, until)` at which any member of
    /// `gpus` is down, if any. A fault already active at `from` yields
    /// `from` itself; a fault opening inside the window yields its
    /// `down_from`.
    pub fn first_down_within(
        &self,
        gpus: GpuSet,
        from: SimTime,
        until: SimTime,
    ) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for f in &self.faults {
            if !gpus.contains(f.gpu) {
                continue;
            }
            let hit = if f.is_down_at(from) {
                Some(from)
            } else if f.down_from > from && f.down_from < until {
                Some(f.down_from)
            } else {
                None
            };
            if let Some(t) = hit {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            }
        }
        earliest
    }

    /// The configured stragglers.
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }

    /// The configured performance faults.
    pub fn perf_faults(&self) -> &[PerfFault] {
        &self.perf_faults
    }

    /// The configured hard faults.
    pub fn faults(&self) -> &[GpuFault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn window(a: u64, b: u64) -> (SimTime, SimTime) {
        (SimTime::from_millis(a), SimTime::from_millis(b))
    }

    #[test]
    fn straggler_window_semantics() {
        let (from, until) = window(100, 200);
        let s = Straggler::new(GpuId(3), 2.0, from, until);
        assert!(!s.affects(GpuId(3), SimTime::from_millis(99)));
        assert!(s.affects(GpuId(3), SimTime::from_millis(100)));
        assert!(s.affects(GpuId(3), SimTime::from_millis(199)));
        assert!(!s.affects(GpuId(3), SimTime::from_millis(200)));
        assert!(!s.affects(GpuId(2), SimTime::from_millis(150)));
    }

    #[test]
    fn group_takes_the_slowest_member() {
        let (from, until) = window(0, 1000);
        let plan = FailurePlan::none()
            .with_straggler(Straggler::new(GpuId(0), 1.5, from, until))
            .with_straggler(Straggler::new(GpuId(1), 3.0, from, until));
        let both = GpuSet::contiguous(0, 2);
        assert_eq!(plan.group_slowdown(both, SimTime::from_millis(10)), 3.0);
        let only_first = GpuSet::single(GpuId(0));
        assert_eq!(
            plan.group_slowdown(only_first, SimTime::from_millis(10)),
            1.5
        );
        let unaffected = GpuSet::contiguous(4, 2);
        assert_eq!(
            plan.group_slowdown(unaffected, SimTime::from_millis(10)),
            1.0
        );
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FailurePlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.group_slowdown(GpuSet::first_n(8), SimTime::ZERO), 1.0);
        assert!(plan.down_gpus(SimTime::ZERO).is_empty());
        assert_eq!(
            plan.first_down_within(GpuSet::first_n(8), SimTime::ZERO, SimTime::MAX),
            None
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let t = SimTime::from_millis(5);
        Straggler::new(GpuId(0), 2.0, t, t);
    }

    #[test]
    #[should_panic(expected = "≥ 1.0")]
    fn speedups_rejected() {
        let (from, until) = window(0, 1);
        Straggler::new(GpuId(0), 0.5, from, until);
    }

    #[test]
    fn transient_fault_window_semantics() {
        let (from, until) = window(100, 200);
        let f = GpuFault::transient(GpuId(2), from, until);
        assert!(!f.is_down_at(SimTime::from_millis(99)));
        assert!(f.is_down_at(SimTime::from_millis(100)));
        assert!(f.is_down_at(SimTime::from_millis(199)));
        assert!(!f.is_down_at(SimTime::from_millis(200)));
    }

    #[test]
    fn permanent_fault_never_recovers() {
        let f = GpuFault::permanent(GpuId(7), SimTime::from_millis(50));
        assert!(!f.is_down_at(SimTime::from_millis(49)));
        assert!(f.is_down_at(SimTime::from_millis(50)));
        assert!(f.is_down_at(SimTime::from_secs_f64(1e6)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_fault_window_rejected() {
        let t = SimTime::from_millis(5);
        GpuFault::transient(GpuId(0), t, t);
    }

    #[test]
    fn down_gpus_tracks_windows() {
        let (from, until) = window(100, 200);
        let plan = FailurePlan::none()
            .with_fault(GpuFault::transient(GpuId(1), from, until))
            .with_fault(GpuFault::permanent(GpuId(4), SimTime::from_millis(150)));
        assert!(plan.down_gpus(SimTime::from_millis(50)).is_empty());
        assert_eq!(
            plan.down_gpus(SimTime::from_millis(150)),
            GpuSet::single(GpuId(1)).with(GpuId(4))
        );
        assert_eq!(
            plan.down_gpus(SimTime::from_millis(300)),
            GpuSet::single(GpuId(4))
        );
    }

    #[test]
    fn first_down_within_finds_earliest_hit() {
        let plan = FailurePlan::none()
            .with_fault(GpuFault::transient(
                GpuId(1),
                SimTime::from_millis(100),
                SimTime::from_millis(200),
            ))
            .with_fault(GpuFault::permanent(GpuId(2), SimTime::from_millis(80)));
        let group = GpuSet::contiguous(0, 4);
        // Both faults open inside the window: earliest wins.
        assert_eq!(
            plan.first_down_within(group, SimTime::from_millis(0), SimTime::from_millis(500)),
            Some(SimTime::from_millis(80))
        );
        // A fault already active at `from` yields `from`.
        assert_eq!(
            plan.first_down_within(group, SimTime::from_millis(90), SimTime::from_millis(95)),
            Some(SimTime::from_millis(90))
        );
        // Disjoint group is unaffected.
        assert_eq!(
            plan.first_down_within(
                GpuSet::contiguous(4, 2),
                SimTime::ZERO,
                SimTime::from_secs_f64(10.0)
            ),
            None
        );
        // Window entirely before any outage.
        assert_eq!(
            plan.first_down_within(group, SimTime::ZERO, SimTime::from_millis(80)),
            None
        );
    }

    proptest! {
        /// Overlapping stragglers on one GPU compose by *max* over the
        /// windows active at the query instant — never by sum or product.
        #[test]
        fn prop_overlapping_stragglers_take_max(
            s1 in 1u64..400, f1 in 0u64..1000, w1 in 1u64..1000,
            s2 in 1u64..400, f2 in 0u64..1000, w2 in 1u64..1000,
            t in 0u64..2200,
        ) {
            let sl1 = 1.0 + s1 as f64 / 100.0;
            let sl2 = 1.0 + s2 as f64 / 100.0;
            let (a1, b1) = (SimTime::from_millis(f1), SimTime::from_millis(f1 + w1));
            let (a2, b2) = (SimTime::from_millis(f2), SimTime::from_millis(f2 + w2));
            let plan = FailurePlan::none()
                .with_straggler(Straggler::new(GpuId(0), sl1, a1, b1))
                .with_straggler(Straggler::new(GpuId(0), sl2, a2, b2));
            let time = SimTime::from_millis(t);
            let mut expect = 1.0f64;
            if is_active_at(a1, Some(b1), time) {
                expect = expect.max(sl1);
            }
            if is_active_at(a2, Some(b2), time) {
                expect = expect.max(sl2);
            }
            prop_assert_eq!(plan.group_slowdown(GpuSet::single(GpuId(0)), time), expect);
        }

        /// A fault and a straggler on the same GPU stay independent views:
        /// `is_down` tracks the outage window exactly, and whenever the
        /// GPU is down any execution window starting then reports an
        /// immediate hit (the engine aborts rather than running slowly).
        #[test]
        fn prop_fault_and_straggler_on_same_gpu(
            sd in 1u64..400, sf in 0u64..1000, sw in 1u64..1000,
            ff in 0u64..1000, fw in 1u64..1000, t in 0u64..2200,
        ) {
            let plan = FailurePlan::none()
                .with_straggler(Straggler::new(
                    GpuId(3),
                    1.0 + sd as f64 / 100.0,
                    SimTime::from_millis(sf),
                    SimTime::from_millis(sf + sw),
                ))
                .with_fault(GpuFault::transient(
                    GpuId(3),
                    SimTime::from_millis(ff),
                    SimTime::from_millis(ff + fw),
                ));
            let time = SimTime::from_millis(t);
            let g = GpuSet::single(GpuId(3));
            let down = is_active_at(
                SimTime::from_millis(ff),
                Some(SimTime::from_millis(ff + fw)),
                time,
            );
            prop_assert_eq!(plan.is_down(GpuId(3), time), down);
            if down {
                prop_assert_eq!(plan.first_down_within(g, time, SimTime::MAX), Some(time));
            }
            prop_assert!(plan.group_slowdown(g, time) >= 1.0);
        }

        /// Overlapping perf faults and hard faults on the same GPU, under
        /// arbitrary window overlap: the effective speed is always in
        /// `(0, 1]` (never ≤ 0, never NaN), a down GPU is never
        /// dispatchable (any window starting inside the outage reports an
        /// immediate hit), and capacity never counts a down GPU.
        #[test]
        fn prop_perf_and_hard_faults_never_break_speed_or_dispatch(
            pf1 in 1u64..500, pfrom1 in 0u64..1000, pw1 in 1u64..1000,
            pf2 in 1u64..500, pfrom2 in 0u64..1000,
            sf in 1u64..500, sfrom in 0u64..1000, sw in 1u64..1000,
            ff in 0u64..1000, fw in 1u64..1000,
            t in 0u64..2500,
        ) {
            let plan = FailurePlan::none()
                .with_perf_fault(PerfFault::throttle(
                    GpuId(2),
                    1.0 + pf1 as f64 / 100.0,
                    SimTime::from_millis(pfrom1),
                    SimTime::from_millis(pfrom1 + pw1),
                ))
                .with_perf_fault(PerfFault::brownout(
                    GpuId(2),
                    1.0 + pf2 as f64 / 100.0,
                    SimTime::from_millis(pfrom2),
                ))
                .with_straggler(Straggler::new(
                    GpuId(2),
                    1.0 + sf as f64 / 100.0,
                    SimTime::from_millis(sfrom),
                    SimTime::from_millis(sfrom + sw),
                ))
                .with_fault(GpuFault::transient(
                    GpuId(2),
                    SimTime::from_millis(ff),
                    SimTime::from_millis(ff + fw),
                ));
            let time = SimTime::from_millis(t);
            let g = GpuSet::single(GpuId(2));
            let speed = plan.effective_speed(GpuId(2), time);
            prop_assert!(speed > 0.0 && speed <= 1.0 && speed.is_finite());
            let slow = plan.group_slowdown(g, time);
            prop_assert!(slow >= 1.0 && slow.is_finite());
            let down = plan.is_down(GpuId(2), time);
            if down {
                // The engine aborts instead of dispatching: any window
                // starting now reports an immediate hit …
                prop_assert_eq!(plan.first_down_within(g, time, SimTime::MAX), Some(time));
                // … and capacity never counts the down GPU.
                prop_assert_eq!(plan.effective_capacity(g, time), 0.0);
            } else {
                let cap = plan.effective_capacity(g, time);
                prop_assert!(cap > 0.0 && cap <= 1.0);
            }
        }

        /// A group whose members are all down can never begin a dispatch:
        /// any window starting inside the outage reports an immediate
        /// abort, and the group is usable again exactly at `up_at`.
        #[test]
        fn prop_fully_down_group_never_dispatches(
            mask in 1u64..256, ff in 0u64..1000, fw in 1u64..1000, dt in 0u64..1000,
        ) {
            let group = GpuSet::from_mask(mask);
            let from = SimTime::from_millis(ff);
            let until = SimTime::from_millis(ff + fw);
            let mut plan = FailurePlan::none();
            for g in group.iter() {
                plan = plan.with_fault(GpuFault::transient(g, from, until));
            }
            let t = SimTime::from_millis(ff + dt % fw);
            prop_assert!(plan.down_gpus(t).is_superset_of(group));
            prop_assert_eq!(plan.first_down_within(group, t, SimTime::MAX), Some(t));
            prop_assert!(plan.down_gpus(until).intersection(group).is_empty());
            prop_assert_eq!(
                plan.first_down_within(group, until, SimTime::MAX.min(until)),
                None
            );
        }
    }

    #[test]
    fn perf_fault_kinds_share_window_semantics() {
        let (from, until) = window(100, 200);
        for p in [
            PerfFault::straggler(GpuId(3), 2.0, from, until),
            PerfFault::throttle(GpuId(3), 2.0, from, until),
        ] {
            assert!(!p.affects(GpuId(3), SimTime::from_millis(99)));
            assert!(p.affects(GpuId(3), SimTime::from_millis(100)));
            assert!(p.affects(GpuId(3), SimTime::from_millis(199)));
            assert!(!p.affects(GpuId(3), SimTime::from_millis(200)));
            assert!(!p.affects(GpuId(2), SimTime::from_millis(150)));
        }
    }

    #[test]
    fn brownout_never_recovers() {
        let p = PerfFault::brownout(GpuId(1), 1.5, SimTime::from_millis(50));
        assert_eq!(p.kind, PerfFaultKind::Brownout);
        assert!(!p.affects(GpuId(1), SimTime::from_millis(49)));
        assert!(p.affects(GpuId(1), SimTime::from_secs_f64(1e9)));
    }

    #[test]
    #[should_panic(expected = "≥ 1.0")]
    fn perf_fault_speedups_rejected() {
        let (from, until) = window(0, 1);
        PerfFault::throttle(GpuId(0), 0.9, from, until);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_perf_fault_window_rejected() {
        let t = SimTime::from_millis(5);
        PerfFault::straggler(GpuId(0), 2.0, t, t);
    }

    #[test]
    fn perf_faults_and_stragglers_compose_by_max() {
        let (from, until) = window(0, 1000);
        let plan = FailurePlan::none()
            .with_straggler(Straggler::new(GpuId(0), 1.5, from, until))
            .with_perf_fault(PerfFault::throttle(GpuId(0), 2.5, from, until))
            .with_perf_fault(PerfFault::brownout(
                GpuId(1),
                4.0,
                SimTime::from_millis(500),
            ));
        let t_early = SimTime::from_millis(100);
        let t_late = SimTime::from_millis(800);
        assert_eq!(plan.slowdown(GpuId(0), t_early), 2.5);
        assert_eq!(plan.slowdown(GpuId(1), t_early), 1.0);
        assert_eq!(plan.slowdown(GpuId(1), t_late), 4.0);
        let both = GpuSet::contiguous(0, 2);
        assert_eq!(plan.group_slowdown(both, t_late), 4.0);
        assert!(plan.has_slowdowns());
    }

    #[test]
    fn effective_speed_and_capacity() {
        let (from, until) = window(0, 1000);
        let plan = FailurePlan::none()
            .with_perf_fault(PerfFault::throttle(GpuId(0), 2.0, from, until))
            .with_fault(GpuFault::transient(GpuId(1), from, until));
        let t = SimTime::from_millis(100);
        assert_eq!(plan.effective_speed(GpuId(0), t), 0.5);
        assert_eq!(plan.effective_speed(GpuId(2), t), 1.0);
        // 4-GPU set: gpu0 at half speed, gpu1 down, gpus 2-3 nominal.
        let set = GpuSet::first_n(4);
        assert_eq!(plan.effective_capacity(set, t), 2.5);
        // Outside every window the set reports exactly its size.
        let after = SimTime::from_millis(2000);
        assert_eq!(plan.effective_capacity(set, after), 4.0);
        // Fault-free plans report exactly n for any n.
        assert_eq!(
            FailurePlan::none().effective_capacity(GpuSet::first_n(8), t),
            8.0
        );
    }

    #[test]
    fn cluster_outage_expands_to_per_gpu_faults() {
        let (from, until) = window(100, 200);
        let outage = ClusterOutage::transient(2, from, until);
        assert!(!outage.is_down_at(SimTime::from_millis(99)));
        assert!(outage.is_down_at(SimTime::from_millis(100)));
        assert!(!outage.is_down_at(SimTime::from_millis(200)));
        let faults = outage.to_gpu_faults(4);
        assert_eq!(faults.len(), 4);
        let mut plan = FailurePlan::none();
        for f in faults {
            assert_eq!(f.down_from, from);
            assert_eq!(f.up_at, Some(until));
            plan = plan.with_fault(f);
        }
        // Every GPU of the cluster is dark for the whole window.
        assert_eq!(
            plan.down_gpus(SimTime::from_millis(150)),
            GpuSet::first_n(4)
        );
        assert!(plan.down_gpus(SimTime::from_millis(200)).is_empty());
    }

    #[test]
    fn permanent_cluster_outage_never_recovers() {
        let outage = ClusterOutage::permanent(0, SimTime::from_millis(50));
        assert!(outage.is_down_at(SimTime::from_secs_f64(1e9)));
        assert!(outage.to_gpu_faults(8).iter().all(|f| f.up_at.is_none()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_window_rejected() {
        let t = SimTime::from_millis(5);
        ClusterOutage::transient(0, t, t);
    }

    #[test]
    fn fault_and_straggler_compose_on_the_same_gpu() {
        let (from, until) = window(0, 1000);
        let plan = FailurePlan::none()
            .with_straggler(Straggler::new(GpuId(0), 2.0, from, until))
            .with_fault(GpuFault::transient(
                GpuId(0),
                SimTime::from_millis(500),
                SimTime::from_millis(600),
            ));
        let g = GpuSet::single(GpuId(0));
        // Before the outage: straggling but up.
        assert_eq!(plan.group_slowdown(g, SimTime::from_millis(100)), 2.0);
        assert!(!plan.is_down(GpuId(0), SimTime::from_millis(100)));
        // During the outage: down (slowdown is irrelevant; the engine
        // aborts instead of executing).
        assert!(plan.is_down(GpuId(0), SimTime::from_millis(550)));
    }
}
