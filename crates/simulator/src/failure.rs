//! Failure and degradation injection.
//!
//! Real clusters misbehave: a GPU thermally throttles, a link flaps, a
//! neighbour tenant saturates the switch. The serving stack should degrade
//! gracefully rather than collapse. This module injects *stragglers* —
//! per-GPU multiplicative slowdowns active during a time window — which the
//! engine folds into dispatch execution: a sequence-parallel step runs at
//! the pace of its slowest member, so one throttled GPU drags every group
//! it joins (exactly why placement matters).

use crate::gpuset::{GpuId, GpuSet};
use crate::time::SimTime;

/// A per-GPU slowdown over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The degraded GPU.
    pub gpu: GpuId,
    /// Multiplicative step-time factor (> 1 = slower). A factor of 2.0
    /// halves the GPU's effective throughput.
    pub slowdown: f64,
    /// When the degradation begins.
    pub from: SimTime,
    /// When the degradation ends (exclusive).
    pub until: SimTime,
}

impl Straggler {
    /// Creates a straggler.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1.0` or the window is empty.
    pub fn new(gpu: GpuId, slowdown: f64, from: SimTime, until: SimTime) -> Self {
        assert!(
            slowdown >= 1.0 && slowdown.is_finite(),
            "slowdown must be ≥ 1.0, got {slowdown}"
        );
        assert!(from < until, "straggler window must be non-empty");
        Straggler {
            gpu,
            slowdown,
            from,
            until,
        }
    }

    /// Whether the straggler affects `gpu` at `time`.
    pub fn affects(&self, gpu: GpuId, time: SimTime) -> bool {
        self.gpu == gpu && time >= self.from && time < self.until
    }
}

/// A set of injected degradations.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    stragglers: Vec<Straggler>,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a straggler.
    pub fn with_straggler(mut self, s: Straggler) -> Self {
        self.stragglers.push(s);
        self
    }

    /// Whether any degradation is configured.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty()
    }

    /// The execution slowdown of a group dispatch starting at `time`:
    /// the *maximum* member slowdown, because a sequence-parallel step
    /// synchronises on its slowest shard.
    pub fn group_slowdown(&self, gpus: GpuSet, time: SimTime) -> f64 {
        let mut factor = 1.0f64;
        for s in &self.stragglers {
            if gpus.contains(s.gpu) && time >= s.from && time < s.until {
                factor = factor.max(s.slowdown);
            }
        }
        factor
    }

    /// The configured stragglers.
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(a: u64, b: u64) -> (SimTime, SimTime) {
        (SimTime::from_millis(a), SimTime::from_millis(b))
    }

    #[test]
    fn straggler_window_semantics() {
        let (from, until) = window(100, 200);
        let s = Straggler::new(GpuId(3), 2.0, from, until);
        assert!(!s.affects(GpuId(3), SimTime::from_millis(99)));
        assert!(s.affects(GpuId(3), SimTime::from_millis(100)));
        assert!(s.affects(GpuId(3), SimTime::from_millis(199)));
        assert!(!s.affects(GpuId(3), SimTime::from_millis(200)));
        assert!(!s.affects(GpuId(2), SimTime::from_millis(150)));
    }

    #[test]
    fn group_takes_the_slowest_member() {
        let (from, until) = window(0, 1000);
        let plan = FailurePlan::none()
            .with_straggler(Straggler::new(GpuId(0), 1.5, from, until))
            .with_straggler(Straggler::new(GpuId(1), 3.0, from, until));
        let both = GpuSet::contiguous(0, 2);
        assert_eq!(plan.group_slowdown(both, SimTime::from_millis(10)), 3.0);
        let only_first = GpuSet::single(GpuId(0));
        assert_eq!(plan.group_slowdown(only_first, SimTime::from_millis(10)), 1.5);
        let unaffected = GpuSet::contiguous(4, 2);
        assert_eq!(plan.group_slowdown(unaffected, SimTime::from_millis(10)), 1.0);
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FailurePlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.group_slowdown(GpuSet::first_n(8), SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let t = SimTime::from_millis(5);
        Straggler::new(GpuId(0), 2.0, t, t);
    }

    #[test]
    #[should_panic(expected = "≥ 1.0")]
    fn speedups_rejected() {
        let (from, until) = window(0, 1);
        Straggler::new(GpuId(0), 0.5, from, until);
    }
}
