//! Latent hand-off between GPU groups.
//!
//! TetriServe executes at step granularity, so when the scheduler changes a
//! request's parallel degree (or GPU set) between rounds, the intermediate
//! latent tensor must move to the new group. The paper models this with a
//! *Future-like* abstraction whose transfer cost is negligible because
//! latents live in the compressed latent space (§5 "Latent Transfer",
//! Table 4: < 0.05% of step latency). We reproduce both the mechanism and
//! the accounting.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::latent::{transfer_time, LatentHandle};
//! use tetriserve_simulator::time::SimTime;
//!
//! // A 2 MiB latent over a 300 GB/s NVSwitch path is ready in microseconds.
//! let d = transfer_time(2 << 20, 300.0);
//! let handle = LatentHandle::transferring(SimTime::ZERO, d);
//! assert!(handle.ready_at() < SimTime::from_millis(1));
//! ```

use crate::time::{SimDuration, SimTime};

/// Transfer latency of `bytes` over a path with the given bandwidth.
///
/// Adds a fixed 5 µs launch latency for the copy kernel / NCCL send, which
/// dominates for the tiny latents of small resolutions.
///
/// # Panics
///
/// Panics if `bandwidth_gbps` is not positive.
pub fn transfer_time(bytes: u64, bandwidth_gbps: f64) -> SimDuration {
    assert!(
        bandwidth_gbps > 0.0,
        "latent transfer bandwidth must be positive, got {bandwidth_gbps}"
    );
    if bandwidth_gbps.is_infinite() {
        return SimDuration::from_micros(5);
    }
    let secs = bytes as f64 / (bandwidth_gbps * 1e9);
    SimDuration::from_secs_f64(secs) + SimDuration::from_micros(5)
}

/// A Future-like handle to a request's latent tensor.
///
/// Downstream steps may be *scheduled* before the transfer completes; they
/// simply cannot *start* before [`LatentHandle::ready_at`]. The engine uses
/// this to overlap scheduling decisions with asynchronous latent movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatentHandle {
    ready_at: SimTime,
    transfer: SimDuration,
}

impl LatentHandle {
    /// A latent that is already resident on the executing group.
    pub fn resident(now: SimTime) -> Self {
        LatentHandle {
            ready_at: now,
            transfer: SimDuration::ZERO,
        }
    }

    /// A latent in flight: becomes ready `transfer` after `start`.
    pub fn transferring(start: SimTime, transfer: SimDuration) -> Self {
        LatentHandle {
            ready_at: start + transfer,
            transfer,
        }
    }

    /// When the latent is available on the destination group.
    pub fn ready_at(self) -> SimTime {
        self.ready_at
    }

    /// The transfer cost paid (zero for resident latents).
    pub fn transfer_cost(self) -> SimDuration {
        self.transfer
    }

    /// Whether the latent is ready at `now`.
    pub fn is_ready(self, now: SimTime) -> bool {
        now >= self.ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let small = transfer_time(1 << 10, 300.0);
        let large = transfer_time(64 << 20, 300.0);
        assert!(large > small);
        // 64 MiB at 300 GB/s ≈ 224 µs + launch.
        assert!(large < SimDuration::from_millis(1));
    }

    #[test]
    fn transfer_time_has_launch_floor() {
        assert!(transfer_time(0, 300.0) >= SimDuration::from_micros(5));
        assert_eq!(
            transfer_time(1 << 30, f64::INFINITY),
            SimDuration::from_micros(5)
        );
    }

    #[test]
    fn handle_ready_semantics() {
        let start = SimTime::from_millis(10);
        let h = LatentHandle::transferring(start, SimDuration::from_micros(40));
        assert!(!h.is_ready(start));
        assert!(h.is_ready(start + SimDuration::from_micros(40)));
        assert_eq!(h.transfer_cost(), SimDuration::from_micros(40));
    }

    #[test]
    fn resident_handle_is_free_and_ready() {
        let now = SimTime::from_millis(3);
        let h = LatentHandle::resident(now);
        assert!(h.is_ready(now));
        assert_eq!(h.transfer_cost(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn transfer_rejects_zero_bandwidth() {
        transfer_time(1, 0.0);
    }
}
