//! Per-GPU memory accounting.
//!
//! §5 of the paper motivates two memory-aware designs: sequential VAE
//! decoding (to bound peak activation memory) and selective process-group
//! warm-up (because every warmed NCCL group pins persistent device
//! buffers). [`MemoryTracker`] gives the engine enough bookkeeping to report
//! peak HBM usage per GPU and to flag would-be OOM conditions under mixed
//! workloads.

// tetrilint: allow-file(slice-index) -- per-GPU vectors are sized to n_gpus at construction and GpuId values come from the same topology
use crate::gpuset::{GpuId, GpuSet};

/// Tracks resident and peak memory per GPU.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity_bytes: u64,
    static_bytes: Vec<u64>,
    current_dynamic: Vec<u64>,
    peak_total: Vec<u64>,
}

impl MemoryTracker {
    /// Creates a tracker for `n_gpus` devices with `capacity_bytes` HBM each
    /// and `weights_bytes` of model state resident on every device.
    pub fn new(n_gpus: usize, capacity_bytes: u64, weights_bytes: u64) -> Self {
        MemoryTracker {
            capacity_bytes,
            static_bytes: vec![weights_bytes; n_gpus],
            current_dynamic: vec![0; n_gpus],
            peak_total: vec![weights_bytes; n_gpus],
        }
    }

    /// Permanently commits `bytes` on `gpu` (e.g. NCCL buffers on warm-up).
    pub fn commit_static(&mut self, gpu: GpuId, bytes: u64) {
        self.static_bytes[gpu.0] += bytes;
        self.refresh_peak(gpu.0);
    }

    /// Charges transient `bytes_per_gpu` across `gpus` (activation memory of
    /// a running dispatch). Pair with [`MemoryTracker::release`].
    pub fn charge(&mut self, gpus: GpuSet, bytes_per_gpu: u64) {
        for g in gpus.iter() {
            self.current_dynamic[g.0] += bytes_per_gpu;
            self.refresh_peak(g.0);
        }
    }

    /// Releases transient memory previously charged with
    /// [`MemoryTracker::charge`].
    ///
    /// # Panics
    ///
    /// Panics if more is released than is currently charged (an engine
    /// accounting bug).
    pub fn release(&mut self, gpus: GpuSet, bytes_per_gpu: u64) {
        for g in gpus.iter() {
            self.current_dynamic[g.0] = self.current_dynamic[g.0]
                .checked_sub(bytes_per_gpu)
                // tetrilint: allow(taint-panic) -- documented `# Panics` contract: over-release is an accounting bug that must fail loudly, not leave residency corrupt
                .expect("memory release exceeds charged amount");
        }
    }

    fn refresh_peak(&mut self, idx: usize) {
        let total = self.static_bytes[idx] + self.current_dynamic[idx];
        if total > self.peak_total[idx] {
            self.peak_total[idx] = total;
        }
    }

    /// Current total residency on `gpu`.
    pub fn resident_bytes(&self, gpu: GpuId) -> u64 {
        self.static_bytes[gpu.0] + self.current_dynamic[gpu.0]
    }

    /// Peak total residency observed on `gpu`.
    pub fn peak_bytes(&self, gpu: GpuId) -> u64 {
        self.peak_total[gpu.0]
    }

    /// The largest peak across all GPUs.
    pub fn peak_bytes_max(&self) -> u64 {
        self.peak_total.iter().copied().max().unwrap_or(0)
    }

    /// Whether any GPU's peak exceeded its HBM capacity.
    pub fn oom_occurred(&self) -> bool {
        self.peak_total.iter().any(|&p| p > self.capacity_bytes)
    }

    /// Device HBM capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn tracker() -> MemoryTracker {
        MemoryTracker::new(4, 80 * GIB, 24 * GIB)
    }

    #[test]
    fn weights_are_resident_from_start() {
        let t = tracker();
        assert_eq!(t.resident_bytes(GpuId(0)), 24 * GIB);
        assert_eq!(t.peak_bytes_max(), 24 * GIB);
        assert!(!t.oom_occurred());
    }

    #[test]
    fn charge_release_round_trip() {
        let mut t = tracker();
        let gpus = GpuSet::contiguous(0, 2);
        t.charge(gpus, 10 * GIB);
        assert_eq!(t.resident_bytes(GpuId(0)), 34 * GIB);
        assert_eq!(t.resident_bytes(GpuId(2)), 24 * GIB);
        t.release(gpus, 10 * GIB);
        assert_eq!(t.resident_bytes(GpuId(1)), 24 * GIB);
        // Peak persists after release.
        assert_eq!(t.peak_bytes(GpuId(0)), 34 * GIB);
    }

    #[test]
    fn static_commits_accumulate() {
        let mut t = tracker();
        t.commit_static(GpuId(1), GIB);
        t.commit_static(GpuId(1), GIB);
        assert_eq!(t.resident_bytes(GpuId(1)), 26 * GIB);
    }

    #[test]
    fn oom_detection() {
        let mut t = tracker();
        t.charge(GpuSet::single(GpuId(3)), 60 * GIB);
        assert!(t.oom_occurred());
        t.release(GpuSet::single(GpuId(3)), 60 * GIB);
        // OOM is sticky: the peak already exceeded capacity.
        assert!(t.oom_occurred());
    }

    #[test]
    #[should_panic(expected = "exceeds charged")]
    fn over_release_panics() {
        let mut t = tracker();
        t.release(GpuSet::single(GpuId(0)), 1);
    }
}
