//! # tetriserve-simulator
//!
//! Discrete-event GPU-cluster substrate for the TetriServe reproduction.
//!
//! The paper evaluates on 8×H100 and 4×A40 nodes; this crate replaces that
//! hardware with a deterministic simulator faithful to the *serving-visible*
//! behaviour of such nodes:
//!
//! * [`time`] / [`event`] — integer-microsecond clock and a deterministic
//!   future-event list;
//! * [`gpuset`] / [`topology`] — GPU sets and the two interconnect layouts
//!   (NVSwitch-everywhere H100, NVLink-paired A40 with PCIe crossings);
//! * [`group`] — NCCL process-group warm-up semantics (§5 of the paper);
//! * [`latent`] — Future-like latent hand-off between groups (§5, Table 4);
//! * [`memory`] — per-GPU HBM accounting (weights, activations, NCCL
//!   buffers);
//! * [`engine`] — the worker pool that executes step dispatches with
//!   Table 1-calibrated jitter, remap stalls and sequential VAE decode;
//! * [`failure`] — straggler injection for graceful-degradation testing;
//! * [`trace`] — the event log the metrics crate mines for figures;
//! * [`rng`] — seeded randomness (Box–Muller normals, exponentials);
//! * [`digest`] — the shared FNV-1a decision-digest and splitmix64 seed
//!   machinery behind every reproducibility check;
//! * [`lockstep`] — arbitration rules for multi-engine co-simulation
//!   (the fleet layer's single virtual clock).
//!
//! Schedulers (both TetriServe and the fixed-SP baselines) drive the same
//! engine, so every policy comparison in the benchmark harness is
//! apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::engine::{Engine, EngineConfig, StepDispatch};
//! use tetriserve_simulator::gpuset::GpuSet;
//! use tetriserve_simulator::time::{SimDuration, SimTime};
//! use tetriserve_simulator::topology::Topology;
//! use tetriserve_simulator::trace::RequestId;
//!
//! let mut engine = Engine::new(Topology::h100_nvlink(8), EngineConfig::default());
//! let dispatch = StepDispatch {
//!     requests: vec![RequestId(0)],
//!     gpus: GpuSet::contiguous(0, 2),
//!     steps: 10,
//!     per_step: SimDuration::from_millis(40),
//!     latent_bytes: 2 << 20,
//!     activation_bytes_per_gpu: 1 << 30,
//!     decode_after: Some(SimDuration::from_millis(30)),
//!     finishing: vec![RequestId(0)],
//! };
//! let outcome = engine.submit(SimTime::ZERO, &dispatch)?;
//! assert_eq!(outcome.step_done.len(), 10);
//! # Ok::<(), tetriserve_simulator::engine::SubmitError>(())
//! ```

#![warn(missing_docs)]

pub mod digest;
pub mod engine;
pub mod event;
pub mod failure;
pub mod gpuset;
pub mod group;
pub mod latent;
pub mod lockstep;
pub mod memory;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::{DispatchOutcome, Engine, EngineConfig, StepDispatch, SubmitError};
pub use gpuset::{GpuId, GpuSet};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
pub use trace::{DispatchId, RequestId, TenantId, Trace, TraceEvent};
