//! Deterministic digests and seed expansion shared by the bench harnesses
//! and the fleet layer.
//!
//! Every reproducibility check in this workspace pins behaviour to a
//! 64-bit FNV-1a digest over the decision stream (scheduling choices,
//! routing decisions, per-request completions). Keeping the algorithm in
//! one place guarantees the single-cluster (`BENCH_scheduler.json`) and
//! fleet (`BENCH_fleet.json`) digests use byte-for-byte the same hash.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a over 64-bit words (little-endian byte order).
pub fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Running FNV-1a digest with the conventional seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Digest {
    /// Starts a digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Folds one word into the digest.
    pub fn push(&mut self, word: u64) {
        self.0 = fnv1a(self.0, word);
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// Minimal deterministic PRNG (splitmix64) for workload shaping and
/// routing tie-breaks — harnesses must not depend on `rand`'s stability
/// guarantees.
#[derive(Debug, Clone)]
pub struct SplitMix(pub u64);

impl SplitMix {
    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_raw_fold() {
        let mut d = Digest::new();
        let mut raw = FNV_OFFSET;
        for w in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            d.push(w);
            raw = fnv1a(raw, w);
        }
        assert_eq!(d.value(), raw);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.push(1);
        a.push(2);
        let mut b = Digest::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn fnv_empty_input_is_the_offset_basis() {
        assert_eq!(Digest::new().value(), FNV_OFFSET);
        // One-word golden vector: 8 zero bytes folded into the basis.
        let mut expect = FNV_OFFSET;
        for _ in 0..8 {
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(fnv1a(FNV_OFFSET, 0), expect);
    }

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let mut a = SplitMix(0xd17);
        let mut b = SplitMix(0xd17);
        let mut c = SplitMix(0xd18);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
