//! Simulation clock types.
//!
//! The simulator measures time in integer **microseconds** since simulation
//! start. Integer ticks make event ordering exact and runs bit-reproducible,
//! which the scheduler tests rely on. [`SimTime`] is a point on the timeline
//! and [`SimDuration`] is a span; the two are kept distinct so that, e.g.,
//! adding two deadlines is a type error.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let step = SimDuration::from_millis(95);
//! let after_ten = start + step * 10;
//! assert_eq!(after_ten.as_secs_f64(), 0.95);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microsecond ticks per second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microsecond ticks.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond ticks since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is after `self`, so the
    /// result is always a valid (non-negative) duration.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns `None` when `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Whether this time is at or past `deadline`.
    pub fn is_past(self, deadline: SimTime) -> bool {
        self > deadline
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// A span longer than any reachable simulation interval.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microsecond ticks.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond ticks.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// How many whole copies of `step` fit in this span.
    ///
    /// This is the `⌊τ / T⌋` operation from Algorithm 1 of the paper.
    /// Returns `u64::MAX` when `step` is zero (an instantaneous step fits
    /// arbitrarily many times).
    pub fn div_floor(self, step: SimDuration) -> u64 {
        self.0.checked_div(step.0).unwrap_or(u64::MAX)
    }

    /// Multiplies by a floating-point factor, rounding to the nearest tick.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow; use saturating_sub"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < TICKS_PER_SEC {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_round_trips_through_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_round_trips_through_seconds() {
        let d = SimDuration::from_secs_f64(0.0321);
        assert_eq!(d.as_micros(), 32_100);
        assert!((d.as_millis_f64() - 32.1).abs() < 1e-9);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(10));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_order() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(10)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn div_floor_matches_algorithm_one() {
        // q = ⌊τ / T⌋ from Algorithm 1.
        let tau = SimDuration::from_millis(500);
        let step = SimDuration::from_millis(95);
        assert_eq!(tau.div_floor(step), 5);
        assert_eq!(tau.div_floor(SimDuration::ZERO), u64::MAX);
    }

    #[test]
    fn mul_and_div_scale_durations() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn is_past_is_strict() {
        let d = SimTime::from_millis(5);
        assert!(!d.is_past(d));
        assert!((d + SimDuration::from_micros(1)).is_past(d));
    }
}
