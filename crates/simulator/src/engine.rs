//! The distributed execution engine.
//!
// tetrilint: allow-file(slice-index) -- `busy_until`/`busy_time` are
// sized to the topology's GPU count at construction and every `GpuIndex`
// comes from that same topology.
//!
//! This is the simulator's stand-in for the paper's pool of GPU workers
//! (§3 "Execution Engine"). A scheduling policy hands the engine
//! [`StepDispatch`]es — "run these requests for `steps` diffusion steps on
//! this GPU set" — and the engine plays them out on simulated hardware:
//!
//! * it validates that no GPU is double-booked (a scheduler-bug tripwire);
//! * it charges *group warm-up* for cold process groups and *remap stalls*
//!   plus asynchronous *latent transfers* when a request's GPU set changes
//!   between consecutive dispatches (§4.2.3, §5);
//! * it perturbs each step with a small multiplicative jitter whose
//!   coefficient of variation matches the sub-percent stability the paper
//!   measures in Table 1;
//! * it serialises VAE decodes (§5 "VAE Decoder Sequential Execution") and
//!   accounts activation/NCCL memory.
//!
//! The engine itself is *passive*: it computes, at submit time, the exact
//! timeline a dispatch will follow and returns it in a [`DispatchOutcome`].
//! The serving loop turns those timelines into future events. This is sound
//! because dispatches are never cancelled mid-flight by the *scheduler* —
//! the round-based scheduler only preempts at round boundaries, i.e.
//! between dispatches — and because hard GPU faults come from the
//! statically known [`crate::failure::FailurePlan`], so a fault-induced
//! abort's exact instant is computable at submit time too: the outcome then
//! carries [`DispatchOutcome::aborted`], only the steps completed before
//! the fault count (step-level checkpointing), and the burned-but-useless
//! tail is charged as wasted GPU-seconds.

use crate::gpuset::GpuSet;
use crate::group::ProcessGroupCache;
use crate::latent::transfer_time;
use crate::memory::MemoryTracker;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{DispatchId, RequestId, StallReason, Trace, TraceEvent};

use std::collections::{HashMap, HashSet};

/// Tunable engine behaviour.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Coefficient of variation of per-step execution jitter. The paper
    /// measures ≤ 0.7% across all resolutions and SP degrees (Table 1).
    pub step_noise_cv: f64,
    /// Delay charged when a request resumes on a *different* GPU set than
    /// its previous dispatch (distributed-context re-establishment). GPU
    /// placement preservation exists to avoid exactly this cost.
    pub remap_stall: SimDuration,
    /// First-collective latency on a cold process group (NCCL channel
    /// initialisation).
    pub group_warmup: SimDuration,
    /// Persistent device buffer bytes pinned per member GPU per warm group.
    pub nccl_buffer_bytes: u64,
    /// Model weight bytes resident on every GPU.
    pub weights_bytes_per_gpu: u64,
    /// HBM capacity per GPU.
    pub hbm_capacity_bytes: u64,
    /// Seed for step jitter.
    pub seed: u64,
    /// Injected degradations (stragglers and hard GPU faults); empty by
    /// default.
    pub failures: crate::failure::FailurePlan,
    /// Bandwidth for re-materialising a latent from host checkpoint after
    /// its GPU group died (PCIe-class, much slower than NVLink paths).
    pub host_recovery_gbps: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            step_noise_cv: 0.002,
            remap_stall: SimDuration::from_millis(15),
            group_warmup: SimDuration::from_millis(150),
            nccl_buffer_bytes: 64 << 20,
            weights_bytes_per_gpu: 24 << 30,
            hbm_capacity_bytes: 80 << 30,
            seed: 0x7e7215e7,
            failures: crate::failure::FailurePlan::none(),
            host_recovery_gbps: 25.0,
        }
    }
}

/// A unit of work for the engine: `steps` diffusion steps for a batch of
/// requests on a fixed GPU set.
#[derive(Debug, Clone)]
pub struct StepDispatch {
    /// Requests advancing together (batched execution; usually one).
    pub requests: Vec<RequestId>,
    /// The GPU set executing the dispatch (the SP degree is its size).
    pub gpus: GpuSet,
    /// Number of diffusion steps to run.
    pub steps: u32,
    /// Expected per-step latency from the cost model (pre-jitter).
    pub per_step: SimDuration,
    /// Latent tensor size per request, for hand-off accounting.
    pub latent_bytes: u64,
    /// Transient activation bytes per member GPU while running.
    pub activation_bytes_per_gpu: u64,
    /// VAE decode latency applied to each member of `finishing`.
    pub decode_after: Option<SimDuration>,
    /// The subset of `requests` that complete with this dispatch (they run
    /// their final diffusion step here and proceed to VAE decode).
    pub finishing: Vec<RequestId>,
}

/// The fully resolved timeline of a submitted dispatch.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// Engine-assigned identifier.
    pub id: DispatchId,
    /// When execution began (after stalls, warm-up and latent waits).
    pub start: SimTime,
    /// Completion time of each step, in order.
    pub step_done: Vec<SimTime>,
    /// When the GPUs become free (completion of the final step).
    pub gpus_free_at: SimTime,
    /// Per-request end-to-end completion (only when `decode_after` was set).
    pub request_done: Vec<(RequestId, SimTime)>,
    /// Total synchronous stall charged before the first step.
    pub stall: SimDuration,
    /// Longest latent transfer that gated the start.
    pub latent_wait: SimDuration,
    /// Set when a member GPU went down mid-flight and killed the dispatch.
    /// `step_done` then holds only the checkpointed steps and
    /// `gpus_free_at` is the fault instant.
    pub aborted: Option<AbortInfo>,
}

/// How a dispatch died when a member GPU went down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbortInfo {
    /// The fault instant.
    pub time: SimTime,
    /// The member GPUs down at the fault instant.
    pub down: GpuSet,
    /// Diffusion steps checkpointed before the fault.
    pub completed_steps: u32,
    /// GPU-seconds burned without producing a completed step, summed over
    /// all member GPUs.
    pub wasted_gpu_seconds: f64,
}

/// Errors returned by [`Engine::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The dispatch referenced GPUs outside the node.
    UnknownGpus(GpuSet),
    /// The GPU-set size was not a power of two (sequence parallelism
    /// requires it).
    NotPowerOfTwo(usize),
    /// One of the GPUs is still executing a previous dispatch.
    GpuBusy(GpuSet),
    /// One of the GPUs is down (hard fault) at submit time; schedulers
    /// should consult the health view and never target down GPUs.
    GpuDown(GpuSet),
    /// The dispatch had no requests or no steps.
    EmptyDispatch,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownGpus(g) => write!(f, "gpu set {g} outside the node"),
            SubmitError::NotPowerOfTwo(n) => {
                write!(f, "sequence parallel degree {n} is not a power of two")
            }
            SubmitError::GpuBusy(g) => write!(f, "gpu set {g} is still busy"),
            SubmitError::GpuDown(g) => write!(f, "gpu set {g} is down (hard fault)"),
            SubmitError::EmptyDispatch => write!(f, "dispatch has no requests or no steps"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The simulated GPU worker pool.
#[derive(Debug)]
pub struct Engine {
    topology: Topology,
    config: EngineConfig,
    groups: ProcessGroupCache,
    memory: MemoryTracker,
    rng: SimRng,
    busy_until: Vec<SimTime>,
    busy_time: Vec<SimDuration>,
    // Point-queried only (get/insert/remove) — hash order never escapes
    // these two, so same-seed runs are unaffected by their randomization.
    last_gpus: HashMap<RequestId, GpuSet>,
    needs_recovery: HashSet<RequestId>,
    decode_free_at: SimTime,
    next_dispatch: u64,
    trace: Trace,
}

impl Engine {
    /// Creates an engine over `topology` with the given behaviour and
    /// pre-warms the aligned power-of-two blocks (the "compact set of
    /// commonly used, overlapping groups" of §5).
    pub fn new(topology: Topology, config: EngineConfig) -> Self {
        let n = topology.n_gpus();
        let mut groups = ProcessGroupCache::new(config.group_warmup, config.nccl_buffer_bytes);
        let mut memory =
            MemoryTracker::new(n, config.hbm_capacity_bytes, config.weights_bytes_per_gpu);
        let mut prewarm = Vec::new();
        let mut k = 2;
        while k <= n {
            prewarm.extend(topology.aligned_blocks(k));
            k *= 2;
        }
        for g in &prewarm {
            for gpu in g.iter() {
                memory.commit_static(gpu, config.nccl_buffer_bytes);
            }
        }
        groups.prewarm(prewarm);
        let rng = SimRng::seed_from_u64(config.seed);
        Engine {
            topology,
            config,
            groups,
            memory,
            rng,
            busy_until: vec![SimTime::ZERO; n],
            busy_time: vec![SimDuration::ZERO; n],
            last_gpus: HashMap::new(),
            needs_recovery: HashSet::new(),
            decode_free_at: SimTime::ZERO,
            next_dispatch: 0,
            trace: Trace::new(),
        }
    }

    /// The node topology the engine runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submits a dispatch at simulated time `now` and resolves its timeline.
    ///
    /// # Errors
    ///
    /// Returns a [`SubmitError`] when the dispatch is malformed or any GPU
    /// in the set is still busy at `now` — the latter indicates a scheduler
    /// bug, since policies must only reuse GPUs after the corresponding
    /// dispatch-done event.
    pub fn submit(
        &mut self,
        now: SimTime,
        dispatch: &StepDispatch,
    ) -> Result<DispatchOutcome, SubmitError> {
        self.validate(now, dispatch)?;
        let id = DispatchId(self.next_dispatch);
        self.next_dispatch += 1;

        // Synchronous pre-delays: group warm-up and remap stall.
        let warmup = self.groups.ensure(dispatch.gpus);
        if !warmup.is_zero() {
            for gpu in dispatch.gpus.iter() {
                self.memory
                    .commit_static(gpu, self.config.nccl_buffer_bytes);
            }
            self.trace.record(TraceEvent::Stall {
                time: now,
                dispatch: id,
                duration: warmup,
                reason: StallReason::GroupWarmup,
            });
        }
        let mut remap = SimDuration::ZERO;
        let mut latent_wait = SimDuration::ZERO;
        for &req in &dispatch.requests {
            if let Some(&prev) = self.last_gpus.get(&req) {
                if prev != dispatch.gpus {
                    remap = self.config.remap_stall;
                    let path = prev.union(dispatch.gpus);
                    let bw = self.topology.group_bandwidth_gbps(path);
                    let t = transfer_time(dispatch.latent_bytes, bw);
                    latent_wait = latent_wait.max(t);
                    self.trace.record(TraceEvent::LatentTransfer {
                        time: now,
                        request: req,
                        bytes: dispatch.latent_bytes,
                        duration: t,
                    });
                }
            }
        }
        if !remap.is_zero() {
            self.trace.record(TraceEvent::Stall {
                time: now,
                dispatch: id,
                duration: remap,
                reason: StallReason::Remap,
            });
        }
        // A request whose previous group died has no resident latent
        // anywhere on the cluster: re-materialise it from the host-side
        // step checkpoint over the (slow) recovery path.
        for &req in &dispatch.requests {
            if self.needs_recovery.remove(&req) {
                let t = transfer_time(dispatch.latent_bytes, self.config.host_recovery_gbps);
                latent_wait = latent_wait.max(t);
                self.trace.record(TraceEvent::LatentTransfer {
                    time: now,
                    request: req,
                    bytes: dispatch.latent_bytes,
                    duration: t,
                });
            }
        }
        // Latent transfers are asynchronous and overlap the stall; the step
        // cannot start before both complete.
        let stall = warmup + remap;
        let start = now + stall.max(latent_wait);

        // A fault landing during the pre-start stall kills the dispatch
        // before its first step.
        let mut abort_at = if start > now {
            self.config
                .failures
                .first_down_within(dispatch.gpus, now, start)
        } else {
            None
        };

        // Execute steps with per-step jitter. Stragglers are re-evaluated
        // at each step's start time, so a degradation window opening
        // mid-dispatch slows only the tail steps; a hard fault inside a
        // step's execution window aborts at the fault instant and the step
        // does not complete.
        let mut step_done = Vec::with_capacity(dispatch.steps as usize);
        let mut t = start;
        if abort_at.is_none() {
            for _ in 0..dispatch.steps {
                let slowdown = self.config.failures.group_slowdown(dispatch.gpus, t);
                let jitter = self.rng.jitter_factor(self.config.step_noise_cv);
                let end = t + dispatch.per_step.mul_f64(jitter * slowdown);
                if let Some(fault) = self
                    .config
                    .failures
                    .first_down_within(dispatch.gpus, t, end)
                {
                    abort_at = Some(fault);
                    break;
                }
                t = end;
                step_done.push(t);
            }
        }
        let gpus_free_at = abort_at.unwrap_or(t);

        // Occupancy bookkeeping: aborted dispatches still burned the GPUs
        // up to the fault instant.
        for gpu in dispatch.gpus.iter() {
            self.busy_until[gpu.0] = gpus_free_at;
            self.busy_time[gpu.0] += gpus_free_at.saturating_since(now);
        }
        self.memory
            .charge(dispatch.gpus, dispatch.activation_bytes_per_gpu);
        self.memory
            .release(dispatch.gpus, dispatch.activation_bytes_per_gpu);
        for &req in &dispatch.requests {
            if abort_at.is_some() {
                // The group is gone; the latent survives only as a host
                // checkpoint of the last completed step.
                self.last_gpus.remove(&req);
                self.needs_recovery.insert(req);
            } else {
                self.last_gpus.insert(req, dispatch.gpus);
            }
        }

        // Sequential per-request VAE decode (off the GPUs' critical path).
        // Aborted dispatches never reach the decoder.
        let mut request_done = Vec::new();
        if let Some(decode) = dispatch.decode_after {
            if abort_at.is_none() {
                for &req in &dispatch.finishing {
                    let begin = self.decode_free_at.max(gpus_free_at);
                    let done = begin + decode;
                    self.decode_free_at = done;
                    request_done.push((req, done));
                    self.trace.record(TraceEvent::RequestDone {
                        time: done,
                        request: req,
                    });
                    self.last_gpus.remove(&req);
                }
            }
        }

        // tetrilint: allow(unwrap) -- step_done.len() ≤ dispatch.steps,
        // which is already a u32.
        let completed = u32::try_from(step_done.len()).expect("steps fit in u32");
        let useful_end = step_done.last().copied();
        let actual_mean = match useful_end {
            Some(end) if completed > 0 => end.saturating_since(start) / u64::from(completed),
            _ => SimDuration::ZERO,
        };
        // For a pre-start abort the planned start never happened; the
        // traced interval opens at the fault instant so audit intervals
        // stay well-formed (start ≤ end).
        let traced_start = abort_at.map_or(start, |a| start.min(a));
        self.trace.record(TraceEvent::DispatchStart {
            time: traced_start,
            dispatch: id,
            requests: dispatch.requests.clone(),
            gpus: dispatch.gpus,
            steps: completed,
            per_step: actual_mean,
        });
        let aborted = if let Some(abort) = abort_at {
            // Everything after the last checkpointed step — including any
            // pre-start stall when no step completed — bought nothing.
            let wasted_per_gpu = abort.saturating_since(useful_end.unwrap_or(now));
            let wasted_gpu_seconds = wasted_per_gpu.as_secs_f64() * dispatch.gpus.len() as f64;
            let down = self
                .config
                .failures
                .down_gpus(abort)
                .intersection(dispatch.gpus);
            self.trace.record(TraceEvent::DispatchAborted {
                time: abort,
                dispatch: id,
                down,
                completed_steps: completed,
                wasted_gpu_seconds,
            });
            Some(AbortInfo {
                time: abort,
                down,
                completed_steps: completed,
                wasted_gpu_seconds,
            })
        } else {
            self.trace.record(TraceEvent::DispatchDone {
                time: gpus_free_at,
                dispatch: id,
            });
            None
        };

        Ok(DispatchOutcome {
            id,
            start,
            step_done,
            gpus_free_at,
            request_done,
            stall,
            latent_wait,
            aborted,
        })
    }

    fn validate(&self, now: SimTime, dispatch: &StepDispatch) -> Result<(), SubmitError> {
        if dispatch.requests.is_empty() || dispatch.steps == 0 {
            return Err(SubmitError::EmptyDispatch);
        }
        debug_assert!(
            dispatch
                .finishing
                .iter()
                .all(|r| dispatch.requests.contains(r)),
            "finishing requests must be dispatch members"
        );
        let all = self.topology.all_gpus();
        if !all.is_superset_of(dispatch.gpus) || dispatch.gpus.is_empty() {
            return Err(SubmitError::UnknownGpus(dispatch.gpus));
        }
        let k = dispatch.gpus.len();
        if !k.is_power_of_two() {
            return Err(SubmitError::NotPowerOfTwo(k));
        }
        let down = self
            .config
            .failures
            .down_gpus(now)
            .intersection(dispatch.gpus);
        if !down.is_empty() {
            return Err(SubmitError::GpuDown(down));
        }
        let busy: GpuSet = dispatch
            .gpus
            .iter()
            .filter(|g| self.busy_until[g.0] > now)
            .collect();
        if !busy.is_empty() {
            return Err(SubmitError::GpuBusy(busy));
        }
        Ok(())
    }

    /// Drops engine-side affinity state for `request` (used when a policy
    /// abandons a request). Subsequent dispatches pay no remap cost.
    pub fn forget_request(&mut self, request: RequestId) {
        self.last_gpus.remove(&request);
    }

    /// The GPU set a request last executed on, if it is mid-flight.
    pub fn last_placement(&self, request: RequestId) -> Option<GpuSet> {
        self.last_gpus.get(&request).copied()
    }

    /// GPUs idle at `now`.
    pub fn idle_gpus(&self, now: SimTime) -> GpuSet {
        self.topology
            .all_gpus()
            .iter()
            .filter(|g| self.busy_until[g.0] <= now)
            .collect()
    }

    /// GPUs healthy (not hard-faulted) at `now` — the scheduler's health
    /// view for allocation and placement.
    pub fn healthy_gpus(&self, now: SimTime) -> GpuSet {
        self.topology
            .all_gpus()
            .difference(self.config.failures.down_gpus(now))
    }

    /// Mean GPU utilisation over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(
            horizon > SimTime::ZERO,
            "utilization horizon must be positive"
        );
        let total: f64 = self.busy_time.iter().map(|d| d.as_secs_f64()).sum();
        total / (horizon.as_secs_f64() * self.busy_until.len() as f64)
    }

    /// The execution trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Appends an externally produced event (e.g. the server's scheduler
    /// pass records) to the engine's trace, keeping one merged timeline.
    pub fn record(&mut self, event: TraceEvent) {
        self.trace.record(event);
    }

    /// Consumes the engine and returns its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Memory accounting.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpuset::GpuId;

    fn engine() -> Engine {
        Engine::new(Topology::h100_nvlink(8), EngineConfig::default())
    }

    fn dispatch(reqs: &[u64], gpus: GpuSet, steps: u32, per_step_ms: u64) -> StepDispatch {
        StepDispatch {
            requests: reqs.iter().map(|&r| RequestId(r)).collect(),
            gpus,
            steps,
            per_step: SimDuration::from_millis(per_step_ms),
            latent_bytes: 2 << 20,
            activation_bytes_per_gpu: 1 << 30,
            decode_after: None,
            finishing: Vec::new(),
        }
    }

    #[test]
    fn simple_dispatch_timeline() {
        let mut e = engine();
        let d = dispatch(&[1], GpuSet::contiguous(0, 2), 5, 100);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        assert_eq!(out.step_done.len(), 5);
        // Jitter is ±0.2% so total is within 2% of 500 ms.
        let total = out.gpus_free_at.as_secs_f64();
        assert!((total - 0.5).abs() < 0.01, "total {total}");
        assert!(out.step_done.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out.stall, SimDuration::ZERO, "aligned block is pre-warmed");
    }

    #[test]
    fn double_booking_is_rejected() {
        let mut e = engine();
        let d = dispatch(&[1], GpuSet::contiguous(0, 2), 5, 100);
        e.submit(SimTime::ZERO, &d).unwrap();
        let d2 = dispatch(&[2], GpuSet::contiguous(1, 2), 1, 10);
        let err = e.submit(SimTime::from_millis(10), &d2).unwrap_err();
        assert!(matches!(err, SubmitError::GpuBusy(g) if g.contains(GpuId(1))));
        // After the first dispatch drains, the GPUs are reusable.
        let later = SimTime::from_secs_f64(0.6);
        assert!(e.submit(later, &d2).is_ok());
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut e = engine();
        let d = dispatch(&[1], GpuSet::contiguous(0, 3), 1, 10);
        assert_eq!(
            e.submit(SimTime::ZERO, &d).unwrap_err(),
            SubmitError::NotPowerOfTwo(3)
        );
    }

    #[test]
    fn foreign_and_empty_dispatches_rejected() {
        let mut e = Engine::new(Topology::a40_paired(4), EngineConfig::default());
        let d = dispatch(&[1], GpuSet::contiguous(2, 4), 1, 10);
        assert!(matches!(
            e.submit(SimTime::ZERO, &d).unwrap_err(),
            SubmitError::UnknownGpus(_)
        ));
        let d = dispatch(&[], GpuSet::contiguous(0, 1), 1, 10);
        assert_eq!(
            e.submit(SimTime::ZERO, &d).unwrap_err(),
            SubmitError::EmptyDispatch
        );
        let d = dispatch(&[1], GpuSet::contiguous(0, 1), 0, 10);
        assert_eq!(
            e.submit(SimTime::ZERO, &d).unwrap_err(),
            SubmitError::EmptyDispatch
        );
    }

    #[test]
    fn remap_charges_stall_and_latent_transfer() {
        let mut e = engine();
        let first = dispatch(&[1], GpuSet::contiguous(0, 2), 2, 50);
        let out1 = e.submit(SimTime::ZERO, &first).unwrap();
        // Same set again: placement preserved, no stall.
        let again = dispatch(&[1], GpuSet::contiguous(0, 2), 2, 50);
        let out2 = e.submit(out1.gpus_free_at, &again).unwrap();
        assert_eq!(out2.stall, SimDuration::ZERO);
        assert_eq!(out2.latent_wait, SimDuration::ZERO);
        // Different set: remap stall + latent transfer.
        let moved = dispatch(&[1], GpuSet::contiguous(4, 4), 2, 50);
        let out3 = e.submit(out2.gpus_free_at, &moved).unwrap();
        assert_eq!(out3.stall, EngineConfig::default().remap_stall);
        assert!(!out3.latent_wait.is_zero());
        assert!(out3.start >= out2.gpus_free_at + out3.stall);
        assert!(!e.trace().latent_transfer_total(RequestId(1)).is_zero());
    }

    #[test]
    fn cold_group_pays_warmup_once() {
        let mut e = engine();
        // Non-aligned 2-GPU group {1,2} is not pre-warmed.
        let odd = GpuSet::from_mask(0b110);
        let d = dispatch(&[9], odd, 1, 10);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        assert_eq!(out.stall, EngineConfig::default().group_warmup);
        let d2 = dispatch(&[9], odd, 1, 10);
        let out2 = e.submit(out.gpus_free_at, &d2).unwrap();
        assert_eq!(out2.stall, SimDuration::ZERO);
    }

    #[test]
    fn decode_serialises_and_completes_requests() {
        let mut e = engine();
        let mut d = dispatch(&[1, 2], GpuSet::contiguous(0, 1), 1, 10);
        d.decode_after = Some(SimDuration::from_millis(40));
        d.finishing = vec![RequestId(1), RequestId(2)];
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        assert_eq!(out.request_done.len(), 2);
        let t1 = out.request_done[0].1;
        let t2 = out.request_done[1].1;
        // Decodes are sequential: the second finishes a full decode later.
        assert_eq!(t2.saturating_since(t1), SimDuration::from_millis(40));
        // Completed requests lose engine affinity.
        assert_eq!(e.last_placement(RequestId(1)), None);
    }

    #[test]
    fn idle_gpus_and_utilization() {
        let mut e = engine();
        let d = dispatch(&[1], GpuSet::contiguous(0, 4), 10, 100);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        assert_eq!(e.idle_gpus(SimTime::ZERO), GpuSet::contiguous(4, 4));
        assert_eq!(e.idle_gpus(out.gpus_free_at), GpuSet::first_n(8));
        let util = e.utilization(out.gpus_free_at);
        assert!((util - 0.5).abs() < 0.01, "util {util}");
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let run = || {
            let mut e = engine();
            let d = dispatch(&[1], GpuSet::contiguous(0, 2), 20, 33);
            e.submit(SimTime::ZERO, &d).unwrap().gpus_free_at
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn straggler_slows_whole_group_dispatches() {
        use crate::failure::{FailurePlan, Straggler};
        use crate::gpuset::GpuId;
        let config = EngineConfig {
            step_noise_cv: 0.0,
            failures: FailurePlan::none().with_straggler(Straggler::new(
                GpuId(1),
                2.0,
                SimTime::ZERO,
                SimTime::from_secs_f64(10.0),
            )),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(Topology::h100_nvlink(8), config);
        // The group containing the straggler runs at half speed…
        let slow = dispatch(&[1], GpuSet::contiguous(0, 2), 4, 100);
        let out = e.submit(SimTime::ZERO, &slow).unwrap();
        assert_eq!(out.gpus_free_at, SimTime::from_millis(800));
        // …a disjoint group is unaffected…
        let fine = dispatch(&[2], GpuSet::contiguous(4, 2), 4, 100);
        let out = e.submit(SimTime::ZERO, &fine).unwrap();
        assert_eq!(out.gpus_free_at, SimTime::from_millis(400));
        // …and after the window ends the slow GPUs recover.
        let later = SimTime::from_secs_f64(10.0);
        let healed = dispatch(&[3], GpuSet::contiguous(0, 2), 4, 100);
        let out = e.submit(later, &healed).unwrap();
        assert_eq!(out.gpus_free_at, later + SimDuration::from_millis(400));
    }

    #[test]
    fn straggler_opening_mid_dispatch_slows_only_tail_steps() {
        use crate::failure::{FailurePlan, Straggler};
        use crate::gpuset::GpuId;
        // Window opens at 200 ms, halfway through a 4×100 ms dispatch: the
        // first two steps run at full speed, the last two at half.
        let config = EngineConfig {
            step_noise_cv: 0.0,
            failures: FailurePlan::none().with_straggler(Straggler::new(
                GpuId(0),
                2.0,
                SimTime::from_millis(200),
                SimTime::from_secs_f64(10.0),
            )),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(Topology::h100_nvlink(8), config);
        let d = dispatch(&[1], GpuSet::contiguous(0, 2), 4, 100);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        let expect: Vec<SimTime> = [100u64, 200, 400, 600]
            .iter()
            .map(|&m| SimTime::from_millis(m))
            .collect();
        assert_eq!(out.step_done, expect);
    }

    fn faulty_engine(failures: crate::failure::FailurePlan) -> Engine {
        let config = EngineConfig {
            step_noise_cv: 0.0,
            failures,
            ..EngineConfig::default()
        };
        Engine::new(Topology::h100_nvlink(8), config)
    }

    #[test]
    fn fault_mid_dispatch_aborts_and_checkpoints_completed_steps() {
        use crate::failure::{FailurePlan, GpuFault};
        use crate::gpuset::GpuId;
        // GPU 1 dies at 250 ms, mid-way through step 3 of a 5×100 ms run.
        let plan = FailurePlan::none()
            .with_fault(GpuFault::permanent(GpuId(1), SimTime::from_millis(250)));
        let mut e = faulty_engine(plan);
        let d = dispatch(&[7], GpuSet::contiguous(0, 2), 5, 100);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        let abort = out.aborted.expect("dispatch must abort");
        assert_eq!(abort.time, SimTime::from_millis(250));
        assert_eq!(abort.completed_steps, 2);
        assert_eq!(abort.down, GpuSet::single(GpuId(1)));
        assert_eq!(out.step_done.len(), 2);
        assert_eq!(out.gpus_free_at, SimTime::from_millis(250));
        assert!(out.request_done.is_empty());
        // 50 ms of partial step burned on each of 2 GPUs.
        assert!((abort.wasted_gpu_seconds - 0.1).abs() < 1e-9);
        assert_eq!(e.trace().aborted_count(), 1);
        // The request lost its group affinity and must re-materialise its
        // latent from the host checkpoint on its next dispatch.
        assert_eq!(e.last_placement(RequestId(7)), None);
        let retry = dispatch(&[7], GpuSet::contiguous(4, 2), 3, 100);
        let out2 = e.submit(SimTime::from_millis(300), &retry).unwrap();
        assert!(out2.aborted.is_none());
        assert!(
            out2.latent_wait >= crate::latent::transfer_time(retry.latent_bytes, 25.0),
            "recovery must pay the host re-materialisation transfer"
        );
    }

    #[test]
    fn submit_onto_down_gpu_is_rejected_until_recovery() {
        use crate::failure::{FailurePlan, GpuFault};
        use crate::gpuset::GpuId;
        let plan = FailurePlan::none().with_fault(GpuFault::transient(
            GpuId(0),
            SimTime::from_millis(100),
            SimTime::from_millis(500),
        ));
        let mut e = faulty_engine(plan);
        let d = dispatch(&[1], GpuSet::contiguous(0, 2), 1, 10);
        let err = e.submit(SimTime::from_millis(200), &d).unwrap_err();
        assert_eq!(err, SubmitError::GpuDown(GpuSet::single(GpuId(0))));
        // After the transient outage clears, the GPU serves again.
        assert!(e.submit(SimTime::from_millis(500), &d).is_ok());
        assert_eq!(
            e.healthy_gpus(SimTime::from_millis(200)),
            GpuSet::first_n(8).difference(GpuSet::single(GpuId(0)))
        );
        assert_eq!(
            e.healthy_gpus(SimTime::from_millis(500)),
            GpuSet::first_n(8)
        );
    }

    #[test]
    fn fault_during_prestart_stall_wastes_everything() {
        use crate::failure::{FailurePlan, GpuFault};
        use crate::gpuset::GpuId;
        // Cold (non-aligned) group pays 150 ms warm-up; GPU 2 dies 50 ms in.
        let plan =
            FailurePlan::none().with_fault(GpuFault::permanent(GpuId(2), SimTime::from_millis(50)));
        let mut e = faulty_engine(plan);
        let odd = GpuSet::from_mask(0b110);
        let d = dispatch(&[3], odd, 4, 100);
        let out = e.submit(SimTime::ZERO, &d).unwrap();
        let abort = out.aborted.expect("fault in warm-up must abort");
        assert_eq!(abort.completed_steps, 0);
        assert_eq!(abort.time, SimTime::from_millis(50));
        assert!(out.step_done.is_empty());
        // 50 ms × 2 GPUs, all wasted.
        assert!((abort.wasted_gpu_seconds - 0.1).abs() < 1e-9);
    }

    #[test]
    fn fault_runs_are_bit_reproducible() {
        use crate::failure::{FailurePlan, GpuFault};
        use crate::gpuset::GpuId;
        let run = || {
            let plan = FailurePlan::none().with_fault(GpuFault::transient(
                GpuId(1),
                SimTime::from_millis(120),
                SimTime::from_millis(300),
            ));
            let config = EngineConfig {
                failures: plan,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(Topology::h100_nvlink(8), config);
            let d = dispatch(&[1], GpuSet::contiguous(0, 2), 5, 100);
            let out = e.submit(SimTime::ZERO, &d).unwrap();
            let retry = dispatch(&[1], GpuSet::contiguous(4, 2), 3, 100);
            let out2 = e.submit(SimTime::from_millis(400), &retry).unwrap();
            (
                out.aborted.map(|a| (a.time, a.completed_steps)),
                out2.gpus_free_at,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn memory_peaks_include_activations() {
        let mut e = engine();
        let d = dispatch(&[1], GpuSet::contiguous(0, 1), 1, 10);
        e.submit(SimTime::ZERO, &d).unwrap();
        let peak = e.memory().peak_bytes(GpuId(0));
        assert!(peak >= (24u64 << 30) + (1 << 30));
        assert!(!e.memory().oom_occurred());
    }
}
