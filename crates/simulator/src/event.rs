//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a min-heap over `(time, sequence)` keys. The sequence
//! number breaks ties between events scheduled for the same tick in
//! insertion order, which keeps whole-simulation runs bit-reproducible for a
//! fixed seed — a property the scheduler regression tests depend on.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::event::EventQueue;
//! use tetriserve_simulator::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(20), "second");
//! q.push(SimTime::from_millis(10), "first");
//! q.push(SimTime::from_millis(20), "third");
//!
//! assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("third"));
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry: ordered by time, then by insertion sequence.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events popped from the queue come out in non-decreasing time order; ties
/// are broken by insertion order (FIFO within a tick).
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for ms in [30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_millis(ms), ms);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), ());
        q.push(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Popping any pushed multiset yields non-decreasing times and, within
        /// equal times, preserves push order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
