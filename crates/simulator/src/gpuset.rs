//! Compact GPU-set representation.
//!
//! A [`GpuSet`] is a bitmask over up to 64 GPU slots. The scheduler, the
//! placement logic and the execution engine all speak in GPU sets, so the
//! type is deliberately small (`Copy`) and set algebra is branch-free.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::gpuset::{GpuId, GpuSet};
//!
//! let a: GpuSet = [GpuId(0), GpuId(1)].into_iter().collect();
//! let b = GpuSet::contiguous(1, 2); // {1, 2}
//! assert_eq!(a.union(b).len(), 3);
//! assert_eq!(a.intersection(b).len(), 1);
//! assert!(a.contains(GpuId(0)));
//! ```

use std::fmt;

/// Identifier of a single GPU within a node (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub usize);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// A set of GPUs, stored as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GpuSet(u64);

impl GpuSet {
    /// The empty set.
    pub const EMPTY: GpuSet = GpuSet(0);

    /// Maximum number of GPUs addressable by a set.
    pub const MAX_GPUS: usize = 64;

    /// Creates a set from a raw mask.
    pub const fn from_mask(mask: u64) -> Self {
        GpuSet(mask)
    }

    /// The raw bitmask.
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// A set holding the single GPU `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is ≥ [`GpuSet::MAX_GPUS`].
    pub fn single(id: GpuId) -> Self {
        assert!(id.0 < Self::MAX_GPUS, "GPU id {} out of range", id.0);
        GpuSet(1 << id.0)
    }

    /// The set `{start, start+1, …, start+len-1}`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`GpuSet::MAX_GPUS`].
    pub fn contiguous(start: usize, len: usize) -> Self {
        assert!(
            start + len <= Self::MAX_GPUS,
            "contiguous range {start}..{} out of range",
            start + len
        );
        if len == 0 {
            return GpuSet::EMPTY;
        }
        let mask = if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << start
        };
        GpuSet(mask)
    }

    /// The full set of the first `n` GPUs.
    pub fn first_n(n: usize) -> Self {
        GpuSet::contiguous(0, n)
    }

    /// Number of GPUs in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `id` is a member.
    pub fn contains(self, id: GpuId) -> bool {
        id.0 < Self::MAX_GPUS && (self.0 >> id.0) & 1 == 1
    }

    /// Whether every member of `other` is also a member of `self`.
    pub const fn is_superset_of(self, other: GpuSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the two sets share no members.
    pub const fn is_disjoint(self, other: GpuSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    pub const fn union(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersection(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 & other.0)
    }

    /// Members of `self` that are not in `other`.
    pub const fn difference(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 & !other.0)
    }

    /// Inserts a GPU, returning the enlarged set.
    pub fn with(self, id: GpuId) -> GpuSet {
        self.union(GpuSet::single(id))
    }

    /// The lowest-numbered member, if any.
    pub fn lowest(self) -> Option<GpuId> {
        if self.0 == 0 {
            None
        } else {
            Some(GpuId(self.0.trailing_zeros() as usize))
        }
    }

    /// Takes the `n` lowest-numbered members.
    ///
    /// Returns `None` when the set has fewer than `n` members.
    pub fn take_lowest(self, n: usize) -> Option<GpuSet> {
        if self.len() < n {
            return None;
        }
        let mut out = GpuSet::EMPTY;
        let mut rest = self.0;
        for _ in 0..n {
            let bit = rest & rest.wrapping_neg();
            out.0 |= bit;
            rest ^= bit;
        }
        Some(out)
    }

    /// Iterates over members in ascending GPU-id order.
    pub fn iter(self) -> Iter {
        Iter { remaining: self.0 }
    }
}

impl FromIterator<GpuId> for GpuSet {
    fn from_iter<I: IntoIterator<Item = GpuId>>(iter: I) -> Self {
        iter.into_iter().fold(GpuSet::EMPTY, |set, id| set.with(id))
    }
}

impl Extend<GpuId> for GpuSet {
    fn extend<I: IntoIterator<Item = GpuId>>(&mut self, iter: I) {
        for id in iter {
            *self = self.with(id);
        }
    }
}

impl IntoIterator for GpuSet {
    type Item = GpuId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`GpuSet`], ascending.
#[derive(Debug, Clone)]
pub struct Iter {
    remaining: u64,
}

impl Iterator for Iter {
    type Item = GpuId;

    fn next(&mut self) -> Option<GpuId> {
        if self.remaining == 0 {
            None
        } else {
            let idx = self.remaining.trailing_zeros() as usize;
            self.remaining &= self.remaining - 1;
            Some(GpuId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Debug for GpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GpuSet{{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", id.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for GpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contiguous_builds_expected_mask() {
        assert_eq!(GpuSet::contiguous(0, 4).mask(), 0b1111);
        assert_eq!(GpuSet::contiguous(2, 2).mask(), 0b1100);
        assert_eq!(GpuSet::contiguous(0, 0), GpuSet::EMPTY);
        assert_eq!(GpuSet::contiguous(0, 64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let a = GpuSet::contiguous(0, 4);
        let b = GpuSet::contiguous(2, 4);
        assert_eq!(a.union(b), GpuSet::contiguous(0, 6));
        assert_eq!(a.intersection(b), GpuSet::contiguous(2, 2));
        assert_eq!(a.difference(b), GpuSet::contiguous(0, 2));
        assert!(a.union(b).is_superset_of(a));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let s: GpuSet = [GpuId(5), GpuId(1), GpuId(3)].into_iter().collect();
        let ids: Vec<usize> = s.iter().map(|g| g.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn take_lowest_selects_smallest_ids() {
        let s: GpuSet = [GpuId(7), GpuId(2), GpuId(4), GpuId(0)]
            .into_iter()
            .collect();
        assert_eq!(
            s.take_lowest(2),
            Some([GpuId(0), GpuId(2)].into_iter().collect())
        );
        assert_eq!(s.take_lowest(5), None);
    }

    #[test]
    fn lowest_member() {
        assert_eq!(GpuSet::EMPTY.lowest(), None);
        assert_eq!(GpuSet::contiguous(3, 2).lowest(), Some(GpuId(3)));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = GpuSet::contiguous(1, 2);
        assert_eq!(format!("{s:?}"), "GpuSet{1,2}");
        assert_eq!(format!("{:?}", GpuSet::EMPTY), "GpuSet{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_rejects_out_of_range() {
        let _ = GpuSet::single(GpuId(64));
    }

    proptest! {
        /// Union/intersection/difference behave like their `u64` bit ops and
        /// the cardinalities are consistent.
        #[test]
        fn prop_algebra_consistent(a in any::<u64>(), b in any::<u64>()) {
            let (sa, sb) = (GpuSet::from_mask(a), GpuSet::from_mask(b));
            prop_assert_eq!(
                sa.union(sb).len() + sa.intersection(sb).len(),
                sa.len() + sb.len()
            );
            prop_assert_eq!(sa.difference(sb).union(sa.intersection(sb)), sa);
        }

        /// take_lowest returns a subset of the requested size containing the
        /// smallest ids.
        #[test]
        fn prop_take_lowest(mask in any::<u64>(), n in 0usize..8) {
            let s = GpuSet::from_mask(mask);
            match s.take_lowest(n) {
                Some(t) => {
                    prop_assert_eq!(t.len(), n);
                    prop_assert!(s.is_superset_of(t));
                    // Every member outside t is larger than every member of t.
                    if let Some(max_t) = t.iter().map(|g| g.0).max() {
                        for g in s.difference(t).iter() {
                            prop_assert!(g.0 > max_t);
                        }
                    }
                }
                None => prop_assert!(s.len() < n),
            }
        }
    }
}
