//! Seeded randomness helpers.
//!
//! All stochastic behaviour in the simulator (step-time jitter, workload
//! sampling) flows through [`SimRng`], a thin deterministic wrapper around a
//! seeded [`rand::rngs::SmallRng`]. Gaussian variates are produced with the
//! Box–Muller transform so the crate needs no distribution dependency.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::rng::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.uniform(), b.uniform());
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Deterministic random-number source for the simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "SimRng::below requires n > 0");
        self.inner.random_range(0..n)
    }

    /// Standard normal sample (mean 0, variance 1) via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Multiplicative jitter factor `max(ε, N(1, cv))`.
    ///
    /// Used to perturb step execution times with a target coefficient of
    /// variation; the floor keeps a pathological draw from producing a
    /// non-positive duration.
    pub fn jitter_factor(&mut self, cv: f64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        self.normal(1.0, cv).max(0.05)
    }

    /// Exponential sample with the given mean (inverse rate).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        let u: f64 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Splits off an independent child RNG; deterministic given the parent
    /// state.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.random::<u64>();
        SimRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams should diverge, {same}/32 equal");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn jitter_factor_hits_target_cv() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.jitter_factor(0.005)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.005).abs() < 0.0005, "cv {cv}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn jitter_factor_disabled_for_zero_cv() {
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(rng.jitter_factor(0.0), 1.0);
    }

    #[test]
    fn below_in_range() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from_u64(1234);
        let mut b = SimRng::seed_from_u64(1234);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform().to_bits(), fb.uniform().to_bits());
    }
}
