//! Communication process-group lifecycle.
//!
//! Mirrors §5 "Communication Process Groups Warmup" of the paper: creating a
//! group is free, but the *first* collective on a group initialises NCCL
//! channels (a latency cost) and allocates persistent device buffers on each
//! member (a memory cost). TetriServe pre-warms a compact set of commonly
//! used groups and defers the rest to on-demand warm-up; both behaviours are
//! reproduced here.

use std::collections::HashSet;

use crate::gpuset::GpuSet;
use crate::time::SimDuration;

/// Tracks which process groups have been warmed and charges warm-up costs.
#[derive(Debug, Clone)]
pub struct ProcessGroupCache {
    warmed: HashSet<u64>,
    warmup_cost: SimDuration,
    buffer_bytes_per_member: u64,
}

impl ProcessGroupCache {
    /// Creates a cache with the given first-use warm-up latency and NCCL
    /// buffer footprint per member GPU.
    pub fn new(warmup_cost: SimDuration, buffer_bytes_per_member: u64) -> Self {
        ProcessGroupCache {
            warmed: HashSet::new(),
            warmup_cost,
            buffer_bytes_per_member,
        }
    }

    /// Marks `groups` as pre-warmed (start-up warm-up, off the serving path).
    ///
    /// Returns the total NCCL buffer bytes committed across all member GPUs,
    /// so callers can account the memory cost of eager warm-up that §5 warns
    /// about.
    pub fn prewarm<I: IntoIterator<Item = GpuSet>>(&mut self, groups: I) -> u64 {
        let mut bytes = 0;
        for g in groups {
            if g.len() >= 2 && self.warmed.insert(g.mask()) {
                bytes += self.buffer_bytes_per_member * g.len() as u64;
            }
        }
        bytes
    }

    /// Ensures `group` is warm, returning the latency charged to the first
    /// collective (zero when already warm or when the group has fewer than
    /// two members, which needs no communicator).
    pub fn ensure(&mut self, group: GpuSet) -> SimDuration {
        if group.len() < 2 {
            return SimDuration::ZERO;
        }
        if self.warmed.insert(group.mask()) {
            self.warmup_cost
        } else {
            SimDuration::ZERO
        }
    }

    /// Whether `group` is already warm.
    pub fn is_warm(&self, group: GpuSet) -> bool {
        group.len() < 2 || self.warmed.contains(&group.mask())
    }

    /// Number of warmed multi-GPU groups.
    pub fn warmed_count(&self) -> usize {
        self.warmed.len()
    }

    /// Total NCCL buffer bytes held per member across warmed groups that
    /// include `gpu_index`.
    pub fn buffer_bytes_on(&self, gpu_index: usize) -> u64 {
        // tetrilint: allow(unordered-iter) -- counting matching masks is
        // order-insensitive; no hash order escapes.
        self.warmed
            .iter()
            .filter(|mask| (*mask >> gpu_index) & 1 == 1)
            .count() as u64
            * self.buffer_bytes_per_member
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpuset::GpuSet;

    fn cache() -> ProcessGroupCache {
        ProcessGroupCache::new(SimDuration::from_millis(150), 64 << 20)
    }

    #[test]
    fn first_use_pays_then_free() {
        let mut c = cache();
        let g = GpuSet::contiguous(0, 4);
        assert_eq!(c.ensure(g), SimDuration::from_millis(150));
        assert_eq!(c.ensure(g), SimDuration::ZERO);
        assert!(c.is_warm(g));
    }

    #[test]
    fn single_gpu_groups_are_free() {
        let mut c = cache();
        let g = GpuSet::contiguous(3, 1);
        assert_eq!(c.ensure(g), SimDuration::ZERO);
        assert!(c.is_warm(g));
        assert_eq!(c.warmed_count(), 0);
    }

    #[test]
    fn prewarm_accounts_memory_once() {
        let mut c = cache();
        let g2 = GpuSet::contiguous(0, 2);
        let g4 = GpuSet::contiguous(0, 4);
        let bytes = c.prewarm([g2, g4, g2]);
        assert_eq!(bytes, (64 << 20) * 6);
        assert_eq!(c.ensure(g2), SimDuration::ZERO);
        assert_eq!(c.warmed_count(), 2);
    }

    #[test]
    fn buffer_bytes_counts_groups_containing_gpu() {
        let mut c = cache();
        c.prewarm([GpuSet::contiguous(0, 2), GpuSet::contiguous(0, 4)]);
        assert_eq!(c.buffer_bytes_on(0), (64 << 20) * 2);
        assert_eq!(c.buffer_bytes_on(3), 64 << 20);
        assert_eq!(c.buffer_bytes_on(7), 0);
    }

    #[test]
    fn distinct_groups_warm_independently() {
        let mut c = cache();
        assert!(!c.ensure(GpuSet::contiguous(0, 2)).is_zero());
        assert!(!c.ensure(GpuSet::contiguous(2, 2)).is_zero());
        assert_eq!(c.warmed_count(), 2);
    }
}
