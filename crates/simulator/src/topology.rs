//! GPU interconnect topology.
//!
//! The two testbeds evaluated in the paper are modelled explicitly:
//!
//! * **8×H100 (NVLink 4.0)** — every GPU pair is connected through the
//!   NVSwitch fabric at full bandwidth (900 GB/s aggregate per GPU).
//! * **4×A40 (paired NVLink + PCIe 4.0)** — GPUs are NVLink-bridged in pairs
//!   `(0,1)` and `(2,3)`; any traffic crossing pairs goes over PCIe 4.0
//!   (≈32 GB/s per direction).
//!
//! Collective cost models ask a topology for the *bottleneck per-GPU
//! bandwidth* of a group: the slowest link any member of the group must use
//! to reach another member. On the A40 box this is what makes a poorly
//! placed SP=2 group (one GPU from each pair) dramatically slower than an
//! aligned one — the effect §6.4 of the paper attributes to PCIe crossings.
//!
//! # Examples
//!
//! ```
//! use tetriserve_simulator::gpuset::GpuSet;
//! use tetriserve_simulator::topology::Topology;
//!
//! let a40 = Topology::a40_paired(4);
//! let aligned = GpuSet::contiguous(0, 2);   // {0,1}: NVLink pair
//! let crossed = GpuSet::from_mask(0b0101);  // {0,2}: crosses PCIe
//! assert!(a40.group_bandwidth_gbps(aligned) > a40.group_bandwidth_gbps(crossed));
//! ```

use crate::gpuset::{GpuId, GpuSet};

/// Kind of link between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// NVLink through an NVSwitch fabric (H100-class, all-to-all).
    NvSwitch,
    /// A direct NVLink bridge between two GPUs (A40-class pairs).
    NvLinkBridge,
    /// Host PCIe path between GPUs without a direct NVLink.
    Pcie,
    /// The GPU itself (no transfer needed).
    Local,
}

impl LinkKind {
    /// Effective per-direction bandwidth usable by a collective, in GB/s.
    ///
    /// These are *achievable* collective bandwidths, not marketing peaks:
    /// NVSwitch H100 collectives (with NVLS/SHARP offload) sustain a bit
    /// under half the 900 GB/s aggregate per GPU; a two-GPU NVLink bridge
    /// on A40 sustains ≈ 50 GB/s; PCIe 4.0 x16 ≈ 22 GB/s after protocol
    /// overhead.
    pub fn effective_bandwidth_gbps(self) -> f64 {
        match self {
            LinkKind::NvSwitch => 400.0,
            LinkKind::NvLinkBridge => 50.0,
            LinkKind::Pcie => 22.0,
            LinkKind::Local => f64::INFINITY,
        }
    }
}

/// Interconnect layout of a single multi-GPU node.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n_gpus: usize,
    layout: Layout,
}

#[derive(Debug, Clone, PartialEq)]
enum Layout {
    /// All pairs connected through a switch fabric.
    Switched,
    /// GPUs `2i` and `2i+1` share an NVLink bridge; other pairs use PCIe.
    Paired,
}

impl Topology {
    /// An H100-style node: `n` GPUs, full NVSwitch connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`GpuSet::MAX_GPUS`].
    pub fn h100_nvlink(n: usize) -> Self {
        Self::new(n, Layout::Switched)
    }

    /// An A40-style node: `n` GPUs NVLink-bridged in adjacent pairs,
    /// PCIe 4.0 between pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`GpuSet::MAX_GPUS`].
    pub fn a40_paired(n: usize) -> Self {
        Self::new(n, Layout::Paired)
    }

    fn new(n: usize, layout: Layout) -> Self {
        assert!(
            n > 0 && n <= GpuSet::MAX_GPUS,
            "topology size {n} out of range 1..={}",
            GpuSet::MAX_GPUS
        );
        Topology { n_gpus: n, layout }
    }

    /// Number of GPUs in the node.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// The set of all GPUs in the node.
    pub fn all_gpus(&self) -> GpuSet {
        GpuSet::first_n(self.n_gpus)
    }

    /// The link kind between two GPUs.
    ///
    /// # Panics
    ///
    /// Panics if either id is outside the node.
    pub fn link(&self, a: GpuId, b: GpuId) -> LinkKind {
        assert!(
            a.0 < self.n_gpus && b.0 < self.n_gpus,
            "gpu id out of range for {}-GPU node",
            self.n_gpus
        );
        if a == b {
            return LinkKind::Local;
        }
        match self.layout {
            Layout::Switched => LinkKind::NvSwitch,
            Layout::Paired => {
                if a.0 / 2 == b.0 / 2 {
                    LinkKind::NvLinkBridge
                } else {
                    LinkKind::Pcie
                }
            }
        }
    }

    /// Bottleneck per-GPU collective bandwidth over `group`, in GB/s.
    ///
    /// Defined as the minimum effective bandwidth over every pair of group
    /// members: an all-to-all over the group can progress no faster than its
    /// slowest required link. Single-GPU (or empty) groups report infinite
    /// bandwidth since no transfer occurs.
    ///
    /// # Panics
    ///
    /// Panics if the group contains GPUs outside the node.
    pub fn group_bandwidth_gbps(&self, group: GpuSet) -> f64 {
        let members: Vec<GpuId> = group.iter().collect();
        if let Some(max) = members.last() {
            assert!(
                max.0 < self.n_gpus,
                "group {group:?} contains GPUs outside the {}-GPU node",
                self.n_gpus
            );
        }
        if members.len() < 2 {
            return f64::INFINITY;
        }
        let mut min_bw = f64::INFINITY;
        for (i, &a) in members.iter().enumerate() {
            for &b in members.iter().skip(i + 1) {
                min_bw = min_bw.min(self.link(a, b).effective_bandwidth_gbps());
            }
        }
        min_bw
    }

    /// Whether a group avoids every PCIe crossing (A40 "good placement").
    pub fn group_is_nvlink_only(&self, group: GpuSet) -> bool {
        let members: Vec<GpuId> = group.iter().collect();
        members.iter().enumerate().all(|(i, &a)| {
            members[i + 1..]
                .iter()
                .all(|&b| self.link(a, b) != LinkKind::Pcie)
        })
    }

    /// Enumerates the *aligned* candidate placements of size `k` (a power of
    /// two): blocks `{0..k}`, `{k..2k}`, …
    ///
    /// On the paired layout these blocks are exactly the placements that
    /// maximise NVLink usage for their size; on a switched layout alignment
    /// is irrelevant but harmless.
    pub fn aligned_blocks(&self, k: usize) -> Vec<GpuSet> {
        assert!(
            k > 0 && k.is_power_of_two(),
            "block size {k} must be a power of two"
        );
        (0..self.n_gpus / k)
            .map(|i| GpuSet::contiguous(i * k, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_is_uniform() {
        let t = Topology::h100_nvlink(8);
        assert_eq!(t.link(GpuId(0), GpuId(7)), LinkKind::NvSwitch);
        assert_eq!(t.link(GpuId(3), GpuId(3)), LinkKind::Local);
        let any_group = GpuSet::from_mask(0b1010_0101);
        assert_eq!(t.group_bandwidth_gbps(any_group), 400.0);
        assert!(t.group_is_nvlink_only(any_group));
    }

    #[test]
    fn a40_pairs_are_nvlink_crossings_are_pcie() {
        let t = Topology::a40_paired(4);
        assert_eq!(t.link(GpuId(0), GpuId(1)), LinkKind::NvLinkBridge);
        assert_eq!(t.link(GpuId(2), GpuId(3)), LinkKind::NvLinkBridge);
        assert_eq!(t.link(GpuId(1), GpuId(2)), LinkKind::Pcie);
        assert_eq!(t.link(GpuId(0), GpuId(3)), LinkKind::Pcie);
    }

    #[test]
    fn a40_group_bandwidth_depends_on_placement() {
        let t = Topology::a40_paired(4);
        let aligned = GpuSet::contiguous(0, 2);
        let crossed = GpuSet::from_mask(0b0101);
        assert_eq!(t.group_bandwidth_gbps(aligned), 50.0);
        assert_eq!(t.group_bandwidth_gbps(crossed), 22.0);
        // Any 4-GPU group on a 4-GPU paired node must cross PCIe.
        assert_eq!(t.group_bandwidth_gbps(t.all_gpus()), 22.0);
        assert!(!t.group_is_nvlink_only(t.all_gpus()));
    }

    #[test]
    fn single_gpu_group_needs_no_bandwidth() {
        let t = Topology::a40_paired(4);
        assert!(t
            .group_bandwidth_gbps(GpuSet::single(GpuId(2)))
            .is_infinite());
        assert!(t.group_bandwidth_gbps(GpuSet::EMPTY).is_infinite());
    }

    #[test]
    fn aligned_blocks_tile_the_node() {
        let t = Topology::h100_nvlink(8);
        let blocks = t.aligned_blocks(2);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], GpuSet::contiguous(0, 2));
        assert_eq!(blocks[3], GpuSet::contiguous(6, 2));
        let union = blocks.iter().fold(GpuSet::EMPTY, |acc, b| acc.union(*b));
        assert_eq!(union, t.all_gpus());
        assert_eq!(t.aligned_blocks(8).len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn aligned_blocks_rejects_non_power_of_two() {
        Topology::h100_nvlink(8).aligned_blocks(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_rejects_foreign_gpu() {
        Topology::a40_paired(4).link(GpuId(0), GpuId(4));
    }
}
