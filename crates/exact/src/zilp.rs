//! The single-step time-indexed 0–1 ILP of §4.1 and its exact solver.
//!
//! The paper formalises the single-step case as a Zero-one Integer Linear
//! Program over decision variables `x_{i,t,k}` ("request *i* starts at slot
//! *t* with *k* GPUs") with per-request at-most-once, arrival, deadline and
//! capacity constraints — and proves (Appendix A) that deciding whether all
//! requests can be served reduces from single-machine real-time scheduling
//! feasibility, making DiT serving NP-hard.
//!
//! This module builds those instances (including the Appendix A reduction
//! from RT-FEASIBILITY jobs) and solves them exactly with a small
//! branch-and-bound over start slots, used both to validate the round DP on
//! tiny instances and to demonstrate the blow-up.

use std::time::{Duration, Instant};

/// A request in the single-step time-indexed formulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZilpRequest {
    /// Earliest start slot (`arrival_time(i) ≤ t`).
    pub arrival: u32,
    /// Deadline slot (`t + T_i(k) ≤ D_i`).
    pub deadline: u32,
    /// `T_i(k)` in slots, indexed like [`ZilpInstance::degrees`].
    pub duration: Vec<u32>,
}

/// A complete single-step instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZilpInstance {
    /// GPU capacity `N`.
    pub n_gpus: u32,
    /// Allowed GPU counts `K = {1, 2, 4, …}`.
    pub degrees: Vec<u32>,
    /// Time horizon `T_max` (slots `0..t_max`).
    pub t_max: u32,
    /// The requests.
    pub requests: Vec<ZilpRequest>,
}

/// One scheduled request in a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZilpPlacement {
    /// Chosen start slot.
    pub start: u32,
    /// Chosen degree (GPU count).
    pub gpus: u32,
}

/// An exact solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZilpSolution {
    /// Per-request placement (`None` = rejected).
    pub placements: Vec<Option<ZilpPlacement>>,
    /// Number of requests served on time (the ILP objective).
    pub served: u32,
    /// Whether the search completed within the timeout.
    pub complete: bool,
    /// Nodes explored.
    pub nodes: u64,
}

impl ZilpInstance {
    /// Appendix A reduction: an RT-FEASIBILITY instance — single machine,
    /// jobs `(release, deadline, length)` — becomes a DiT instance with
    /// `N = 1`, `K = {1}`, `S_i = 1`.
    pub fn from_rt_feasibility(jobs: &[(u32, u32, u32)]) -> ZilpInstance {
        let t_max = jobs.iter().map(|&(_, d, _)| d).max().unwrap_or(0);
        ZilpInstance {
            n_gpus: 1,
            degrees: vec![1],
            t_max,
            requests: jobs
                .iter()
                .map(|&(r, d, l)| ZilpRequest {
                    arrival: r,
                    deadline: d,
                    duration: vec![l],
                })
                .collect(),
        }
    }

    /// Enumerates the feasible `(t, k)` pairs of request `i` — the support
    /// of its `x_{i,t,k}` variables under constraints (2) and (3).
    pub fn feasible_starts(&self, i: usize) -> Vec<ZilpPlacement> {
        let r = &self.requests[i];
        let mut out = Vec::new();
        for (di, &k) in self.degrees.iter().enumerate() {
            if k > self.n_gpus {
                continue;
            }
            let dur = r.duration[di];
            for t in r.arrival..=self.t_max.saturating_sub(dur).min(self.t_max) {
                if t + dur <= r.deadline && t + dur <= self.t_max {
                    out.push(ZilpPlacement { start: t, gpus: k });
                }
            }
        }
        out
    }

    /// Number of binary variables in the ILP (for blow-up reporting).
    pub fn variable_count(&self) -> usize {
        (0..self.requests.len())
            .map(|i| self.feasible_starts(i).len())
            .sum()
    }
}

/// Solves the ILP exactly by branch and bound over per-request placements.
pub fn solve_zilp(inst: &ZilpInstance, timeout: Duration) -> ZilpSolution {
    // tetrilint: allow(wall-clock) -- wall-clock timeout guard for the
    // exact solver; affects only how long we search, not the simulation.
    let start = Instant::now();
    let options: Vec<Vec<ZilpPlacement>> = (0..inst.requests.len())
        .map(|i| inst.feasible_starts(i))
        .collect();
    let mut best: Vec<Option<ZilpPlacement>> = vec![None; inst.requests.len()];
    let mut best_served = 0;
    let mut usage = vec![0u32; inst.t_max as usize];
    let mut current: Vec<Option<ZilpPlacement>> = vec![None; inst.requests.len()];
    let mut nodes = 0u64;
    let mut timed_out = false;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        inst: &ZilpInstance,
        options: &[Vec<ZilpPlacement>],
        i: usize,
        served: u32,
        usage: &mut Vec<u32>,
        current: &mut Vec<Option<ZilpPlacement>>,
        best: &mut Vec<Option<ZilpPlacement>>,
        best_served: &mut u32,
        nodes: &mut u64,
        deadline: Instant,
        timed_out: &mut bool,
    ) {
        *nodes += 1;
        // tetrilint: allow(wall-clock) -- solver timeout check (see above).
        if *timed_out || (nodes.is_multiple_of(1024) && Instant::now() >= deadline) {
            *timed_out = true;
            return;
        }
        if i == inst.requests.len() {
            if served > *best_served {
                *best_served = served;
                best.clone_from(current);
            }
            return;
        }
        // Bound: everything remaining could be served.
        if served + (inst.requests.len() - i) as u32 <= *best_served {
            return;
        }
        // Try each feasible placement of request i…
        for &p in &options[i] {
            let di = inst
                .degrees
                .iter()
                .position(|&k| k == p.gpus)
                .expect("placement degree is in the degree set");
            let dur = inst.requests[i].duration[di];
            let span = p.start as usize..(p.start + dur) as usize;
            if span.clone().all(|u| usage[u] + p.gpus <= inst.n_gpus) {
                for u in span.clone() {
                    usage[u] += p.gpus;
                }
                current[i] = Some(p);
                dfs(
                    inst,
                    options,
                    i + 1,
                    served + 1,
                    usage,
                    current,
                    best,
                    best_served,
                    nodes,
                    deadline,
                    timed_out,
                );
                current[i] = None;
                for u in span {
                    usage[u] -= p.gpus;
                }
                if *timed_out {
                    return;
                }
            }
        }
        // …and rejecting it.
        dfs(
            inst,
            options,
            i + 1,
            served,
            usage,
            current,
            best,
            best_served,
            nodes,
            deadline,
            timed_out,
        );
    }

    dfs(
        inst,
        &options,
        0,
        0,
        &mut usage,
        &mut current,
        &mut best,
        &mut best_served,
        &mut nodes,
        start + timeout,
        &mut timed_out,
    );

    ZilpSolution {
        placements: best,
        served: best_served,
        complete: !timed_out,
        nodes,
    }
}

/// Decides RT-FEASIBILITY via the reduction: all jobs schedulable iff the
/// reduced DiT instance serves all of them (`B = n` in Appendix A).
pub fn rt_feasible(jobs: &[(u32, u32, u32)], timeout: Duration) -> Option<bool> {
    let inst = ZilpInstance::from_rt_feasibility(jobs);
    let sol = solve_zilp(&inst, timeout);
    if sol.complete {
        Some(sol.served as usize == jobs.len())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn reduction_preserves_feasibility_yes_instance() {
        // Jobs (release, deadline, length): sequence 0-2, 2-5, 5-6 fits.
        let jobs = [(0, 2, 2), (1, 5, 3), (2, 6, 1)];
        assert_eq!(rt_feasible(&jobs, secs(5)), Some(true));
    }

    #[test]
    fn reduction_preserves_feasibility_no_instance() {
        // Two unit jobs both must run in slot [0,1): impossible on one
        // machine.
        let jobs = [(0, 1, 1), (0, 1, 1)];
        assert_eq!(rt_feasible(&jobs, secs(5)), Some(false));
    }

    #[test]
    fn capacity_constraint_binds() {
        // Two requests want 2 GPUs each on a 2-GPU node in the same window
        // of exactly one duration: only one fits.
        let inst = ZilpInstance {
            n_gpus: 2,
            degrees: vec![1, 2],
            t_max: 4,
            requests: vec![
                ZilpRequest {
                    arrival: 0,
                    deadline: 2,
                    duration: vec![4, 2],
                },
                ZilpRequest {
                    arrival: 0,
                    deadline: 2,
                    duration: vec![4, 2],
                },
            ],
        };
        let sol = solve_zilp(&inst, secs(5));
        assert!(sol.complete);
        assert_eq!(sol.served, 1);
    }

    #[test]
    fn degree_choice_trades_width_for_speed() {
        // A 2-GPU node, two requests, deadline 4: one runs at k=1 (slow but
        // narrow), the other at k=2 would clash — but k=1 for both in
        // parallel works.
        let inst = ZilpInstance {
            n_gpus: 2,
            degrees: vec![1, 2],
            t_max: 4,
            requests: vec![
                ZilpRequest {
                    arrival: 0,
                    deadline: 4,
                    duration: vec![4, 2],
                },
                ZilpRequest {
                    arrival: 0,
                    deadline: 4,
                    duration: vec![4, 2],
                },
            ],
        };
        let sol = solve_zilp(&inst, secs(5));
        assert_eq!(sol.served, 2);
        let ks: Vec<u32> = sol.placements.iter().map(|p| p.unwrap().gpus).collect();
        assert_eq!(ks, vec![1, 1], "both run narrow in parallel");
    }

    #[test]
    fn variable_count_grows_with_horizon() {
        let mk = |t_max| ZilpInstance {
            n_gpus: 4,
            degrees: vec![1, 2, 4],
            t_max,
            requests: vec![ZilpRequest {
                arrival: 0,
                deadline: t_max,
                duration: vec![4, 2, 1],
            }],
        };
        assert!(mk(32).variable_count() > 2 * mk(8).variable_count());
    }

    proptest! {
        /// B&B never over-serves (respects capacity at every slot) and the
        /// reported objective matches the placements.
        #[test]
        fn prop_solution_is_consistent(
            jobs in proptest::collection::vec((0u32..4, 1u32..4), 1..5)
        ) {
            let requests: Vec<ZilpRequest> = jobs
                .iter()
                .map(|&(arr, len)| ZilpRequest {
                    arrival: arr,
                    deadline: arr + len + 3,
                    duration: vec![len + 1, len],
                })
                .collect();
            let inst = ZilpInstance {
                n_gpus: 2,
                degrees: vec![1, 2],
                t_max: 16,
                requests,
            };
            let sol = solve_zilp(&inst, secs(10));
            prop_assert!(sol.complete);
            prop_assert_eq!(
                sol.served as usize,
                sol.placements.iter().filter(|p| p.is_some()).count()
            );
            // Re-check capacity.
            let mut usage = vec![0u32; inst.t_max as usize];
            for (i, p) in sol.placements.iter().enumerate() {
                if let Some(p) = p {
                    let di = inst.degrees.iter().position(|&k| k == p.gpus).unwrap();
                    let dur = inst.requests[i].duration[di];
                    prop_assert!(p.start + dur <= inst.requests[i].deadline);
                    for u in p.start..p.start + dur {
                        usage[u as usize] += p.gpus;
                        prop_assert!(usage[u as usize] <= inst.n_gpus);
                    }
                }
            }
        }
    }
}
