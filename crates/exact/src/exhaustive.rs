//! The exhaustive exact scheduler (Appendix B).
//!
//! The paper quantifies why TetriServe needs a heuristic by implementing an
//! "exact baseline solver that enumerates the complete decision space":
//! per-step sequence-parallel degrees *and* all valid physical GPU-set
//! choices, maximising SLO attainment with total GPU-hours as tie-breaker.
//! Table 6 shows this explodes immediately — three requests on eight GPUs
//! exceed a 60 s timeout — while TetriServe's DP stays under 10 ms.
//!
//! This module reproduces that baseline: a depth-first search over
//! event-ordered step-level decisions with a wall-clock timeout. It is
//! deliberately unoptimised beyond sound pruning on the objective — the
//! point is the combinatorial growth.

use std::time::{Duration, Instant};

use tetriserve_simulator::gpuset::GpuSet;

/// One request in an offline exhaustive instance.
#[derive(Debug, Clone)]
pub struct ExactRequest {
    /// Arrival time in discrete micro-units (any consistent unit).
    pub arrival: u64,
    /// Absolute deadline in the same units.
    pub deadline: u64,
    /// Number of diffusion steps.
    pub steps: u32,
    /// Per-step duration by sequence-parallel degree: `durations[i]` is the
    /// time of one step at `degrees[i]` GPUs.
    pub step_time: Vec<u64>,
}

/// An offline scheduling instance.
#[derive(Debug, Clone)]
pub struct ExactInstance {
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Allowed degrees (powers of two, ascending).
    pub degrees: Vec<usize>,
    /// The requests.
    pub requests: Vec<ExactRequest>,
}

/// Result of an exhaustive solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Maximum number of requests meeting deadlines found.
    pub met: u32,
    /// GPU-time of the best schedule (tie-breaker).
    pub gpu_time: u64,
    /// Whether the search ran to completion (false = timed out with the
    /// best-so-far answer).
    pub complete: bool,
    /// Decision nodes explored.
    pub nodes: u64,
    /// Wall-clock time spent searching.
    pub elapsed: Duration,
}

#[derive(Clone)]
struct SearchState {
    /// Next step index per request.
    next_step: Vec<u32>,
    /// Time each request becomes ready (its previous step's completion).
    ready_at: Vec<u64>,
    /// Time each GPU becomes free.
    gpu_free: Vec<u64>,
    /// Completion time per request (set when the last step finishes).
    done_at: Vec<Option<u64>>,
    gpu_time: u64,
}

struct Searcher<'a> {
    inst: &'a ExactInstance,
    deadline: Instant,
    best_met: u32,
    best_gpu_time: u64,
    nodes: u64,
    timed_out: bool,
    subsets: Vec<Vec<GpuSet>>, // per degree index: all GPU sets of that size
}

/// Solves the instance exhaustively, stopping at `timeout`.
pub fn solve_exhaustive(inst: &ExactInstance, timeout: Duration) -> ExactSolution {
    assert!(
        inst.requests
            .iter()
            .all(|r| r.step_time.len() == inst.degrees.len()),
        "each request needs a step time per degree"
    );
    // tetrilint: allow(wall-clock) -- wall-clock timeout guard for the
    // exhaustive search; affects only how long we search.
    let start = Instant::now();
    let subsets = inst
        .degrees
        .iter()
        .map(|&k| enumerate_subsets(inst.n_gpus, k))
        .collect();
    let mut s = Searcher {
        inst,
        deadline: start + timeout,
        best_met: 0,
        best_gpu_time: u64::MAX,
        nodes: 0,
        timed_out: false,
        subsets,
    };
    let state = SearchState {
        next_step: vec![0; inst.requests.len()],
        ready_at: inst.requests.iter().map(|r| r.arrival).collect(),
        gpu_free: vec![0; inst.n_gpus],
        done_at: vec![None; inst.requests.len()],
        gpu_time: 0,
    };
    s.dfs(&state);
    ExactSolution {
        met: s.best_met,
        gpu_time: if s.best_met == 0 { 0 } else { s.best_gpu_time },
        complete: !s.timed_out,
        nodes: s.nodes,
        elapsed: start.elapsed(),
    }
}

fn enumerate_subsets(n: usize, k: usize) -> Vec<GpuSet> {
    let mut out = Vec::new();
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut mask: u64 = (1 << k) - 1;
    while mask <= full {
        if mask & !full == 0 {
            out.push(GpuSet::from_mask(mask));
        }
        // Gosper's hack: next subset of the same popcount.
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        if r == 0 {
            break;
        }
        mask = (((r ^ mask) >> 2) / c) | r;
    }
    out
}

impl Searcher<'_> {
    fn dfs(&mut self, state: &SearchState) {
        self.nodes += 1;
        // tetrilint: allow(wall-clock) -- search timeout check (see above).
        if self.timed_out || (self.nodes.is_multiple_of(1024) && Instant::now() >= self.deadline) {
            self.timed_out = true;
            return;
        }

        // Requests with steps left.
        let pending: Vec<usize> = (0..self.inst.requests.len())
            .filter(|&i| state.next_step[i] < self.inst.requests[i].steps)
            .collect();
        if pending.is_empty() {
            let met = state
                .done_at
                .iter()
                .zip(&self.inst.requests)
                .filter(|(d, r)| matches!(d, Some(t) if *t <= r.deadline))
                .count() as u32;
            if met > self.best_met || (met == self.best_met && state.gpu_time < self.best_gpu_time)
            {
                self.best_met = met;
                self.best_gpu_time = state.gpu_time;
            }
            return;
        }

        // Upper bound: already-finished on-time requests + all pending.
        let finished_ok = state
            .done_at
            .iter()
            .zip(&self.inst.requests)
            .filter(|(d, r)| matches!(d, Some(t) if *t <= r.deadline))
            .count() as u32;
        let bound = finished_ok + pending.len() as u32;
        if bound < self.best_met {
            return;
        }

        // Branch: schedule the next step of one pending request on one
        // degree on one concrete GPU subset.
        for &i in &pending {
            let req = &self.inst.requests[i];
            for di in 0..self.inst.degrees.len() {
                let dur = req.step_time[di];
                // Clone the (small) subset list so `self` stays borrowable
                // for the recursive call. GPUs with identical free times
                // are interchangeable, so subsets with the same sorted
                // free-time signature are symmetric — explore one
                // representative of each class. (The paper's baseline
                // enumerates raw permutations; we prune the symmetry so the
                // 1-request column terminates while the multi-request
                // explosion — the point of Table 6 — remains.)
                let subsets = self.subsets[di].clone();
                let mut seen_signatures: Vec<Vec<u64>> = Vec::new();
                for gpus in &subsets {
                    let mut signature: Vec<u64> =
                        gpus.iter().map(|g| state.gpu_free[g.0]).collect();
                    signature.sort_unstable();
                    if seen_signatures.contains(&signature) {
                        continue;
                    }
                    seen_signatures.push(signature);
                    let start = gpus
                        .iter()
                        .map(|g| state.gpu_free[g.0])
                        .fold(state.ready_at[i], u64::max);
                    let end = start + dur;
                    let mut next = state.clone();
                    next.next_step[i] += 1;
                    next.ready_at[i] = end;
                    for g in gpus.iter() {
                        next.gpu_free[g.0] = end;
                    }
                    next.gpu_time += dur * gpus.len() as u64;
                    if next.next_step[i] == req.steps {
                        next.done_at[i] = Some(end);
                    }
                    self.dfs(&next);
                    if self.timed_out {
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_request(arrival: u64, deadline: u64, steps: u32) -> ExactRequest {
        // Degrees 1/2/4: perfect halving for test clarity.
        ExactRequest {
            arrival,
            deadline,
            steps,
            step_time: vec![40, 20, 10],
        }
    }

    fn instance(requests: Vec<ExactRequest>) -> ExactInstance {
        ExactInstance {
            n_gpus: 4,
            degrees: vec![1, 2, 4],
            requests,
        }
    }

    #[test]
    fn subsets_enumerate_all_combinations() {
        assert_eq!(enumerate_subsets(4, 1).len(), 4);
        assert_eq!(enumerate_subsets(4, 2).len(), 6);
        assert_eq!(enumerate_subsets(4, 4).len(), 1);
        assert_eq!(enumerate_subsets(8, 4).len(), 70);
    }

    #[test]
    fn single_request_solves_instantly_and_optimally() {
        let inst = instance(vec![simple_request(0, 100, 2)]);
        let sol = solve_exhaustive(&inst, Duration::from_secs(5));
        assert!(sol.complete);
        assert_eq!(sol.met, 1);
        // Loose deadline: cheapest is 2 steps at SP=1 = 80 GPU-time.
        assert_eq!(sol.gpu_time, 80);
    }

    #[test]
    fn tight_deadline_forces_wide_execution() {
        // 2 steps in 25 time units: needs at least one SP=4 step
        // (10+10=20 ✓ at 4 GPUs; 20+10=30 ✗).
        let inst = instance(vec![simple_request(0, 25, 2)]);
        let sol = solve_exhaustive(&inst, Duration::from_secs(5));
        assert!(sol.complete);
        assert_eq!(sol.met, 1);
        assert_eq!(sol.gpu_time, 80, "two SP=4 steps");
    }

    #[test]
    fn two_requests_share_the_node() {
        // Each needs 2 steps in 45 units: SP=2 (20+20=40 on 2 GPUs) works
        // for both simultaneously on a 4-GPU node.
        let inst = instance(vec![simple_request(0, 45, 2), simple_request(0, 45, 2)]);
        let sol = solve_exhaustive(&inst, Duration::from_secs(10));
        assert!(sol.complete);
        assert_eq!(sol.met, 2);
    }

    #[test]
    fn infeasible_request_is_sacrificed() {
        // Deadline 5 < fastest step 10: impossible.
        let inst = instance(vec![simple_request(0, 5, 1), simple_request(0, 100, 1)]);
        let sol = solve_exhaustive(&inst, Duration::from_secs(5));
        assert!(sol.complete);
        assert_eq!(sol.met, 1);
    }

    #[test]
    fn timeout_returns_best_so_far() {
        // Large enough to blow the budget: 4 requests × 4 steps on 4 GPUs.
        let inst = instance(vec![
            simple_request(0, 1000, 4),
            simple_request(0, 1000, 4),
            simple_request(5, 1000, 4),
            simple_request(5, 1000, 4),
        ]);
        let sol = solve_exhaustive(&inst, Duration::from_millis(50));
        assert!(
            !sol.complete,
            "expected a timeout, explored {} nodes",
            sol.nodes
        );
        assert!(sol.elapsed < Duration::from_millis(500));
    }

    #[test]
    fn nodes_explode_with_request_count() {
        // The Table 6 shape: node counts grow by orders of magnitude per
        // added request.
        let count_nodes = |n_reqs: usize| {
            let inst = instance(
                (0..n_reqs)
                    .map(|i| simple_request(i as u64, 10_000, 2))
                    .collect(),
            );
            solve_exhaustive(&inst, Duration::from_millis(400)).nodes
        };
        let n1 = count_nodes(1);
        let n2 = count_nodes(2);
        assert!(n2 > n1 * 20, "n1 {n1}, n2 {n2}");
    }
}
