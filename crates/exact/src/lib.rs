//! # tetriserve-exact
//!
//! Exact schedulers for the complexity side of the paper:
//!
//! * [`exhaustive`] — the Appendix B exact baseline: full enumeration of
//!   per-step degrees × concrete GPU subsets with a wall-clock timeout.
//!   Used to regenerate Table 6's combinatorial-explosion measurements.
//! * [`zilp`] — the §4.1 single-step time-indexed 0–1 ILP, a small
//!   branch-and-bound solver, and the Appendix A reduction from
//!   single-machine real-time scheduling feasibility (the NP-hardness
//!   proof, executable);
//! * [`oracle`] — a clairvoyant offline admission planner used as the
//!   reference point in the `oracle_gap` bench.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use tetriserve_exact::zilp::rt_feasible;
//!
//! // Two unit-length jobs fighting for the same unit window: infeasible.
//! let jobs = [(0, 1, 1), (0, 1, 1)];
//! assert_eq!(rt_feasible(&jobs, Duration::from_secs(1)), Some(false));
//! ```

#![warn(missing_docs)]

pub mod exhaustive;
pub mod oracle;
pub mod zilp;

pub use exhaustive::{solve_exhaustive, ExactInstance, ExactRequest, ExactSolution};
pub use oracle::{plan_oracle, OracleInstance, OraclePlan, OracleRequest};
pub use zilp::{rt_feasible, solve_zilp, ZilpInstance, ZilpPlacement, ZilpRequest, ZilpSolution};
