//! An offline clairvoyant reference scheduler ("oracle").
//!
//! The NP-hardness result (§4.1) rules out computing true optima at any
//! interesting scale, but a *clairvoyant admission planner* — one that sees
//! every arrival in advance and books contiguous capacity at the cheapest
//! deadline-feasible degree, earliest-deadline-first — gives a strong
//! reference point that online schedulers can be measured against. The
//! `oracle_gap` bench reports TetriServe's attainment as a fraction of this
//! oracle's.
//!
//! The oracle is idealised in the online direction (full future knowledge,
//! no execution jitter, no reconfiguration stalls) but conservative in the
//! packing direction (whole requests get contiguous reservations at one
//! degree; no step-level splitting), so it is a reference, not a bound in
//! either strict sense. Both properties are documented at the call sites
//! that interpret the gap.

use tetriserve_simulator::time::{SimDuration, SimTime};

/// One offline request for the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleRequest {
    /// Arrival time.
    pub arrival: SimTime,
    /// Deadline.
    pub deadline: SimTime,
    /// Service time at each allowed degree, aligned with
    /// [`OracleInstance::degrees`].
    pub service: [Option<SimDuration>; 8],
}

/// An offline instance.
#[derive(Debug, Clone)]
pub struct OracleInstance {
    /// GPU capacity.
    pub n_gpus: usize,
    /// Allowed degrees, ascending (≤ 8 entries).
    pub degrees: Vec<usize>,
    /// The requests.
    pub requests: Vec<OracleRequest>,
}

/// The oracle's decision for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleBooking {
    /// Reserved start time.
    pub start: SimTime,
    /// Reserved degree.
    pub degree: usize,
    /// Completion time.
    pub end: SimTime,
}

/// The oracle's plan.
#[derive(Debug, Clone)]
pub struct OraclePlan {
    /// Booking per request (`None` = sacrificed).
    pub bookings: Vec<Option<OracleBooking>>,
    /// Number of requests served within their deadlines.
    pub served: u32,
}

impl OraclePlan {
    /// Attainment ratio over the instance.
    pub fn sar(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            f64::from(self.served) / total as f64
        }
    }
}

/// A step-function capacity profile over time.
#[derive(Debug, Clone)]
struct CapacityProfile {
    /// Break points: (time, free GPUs from this time until the next point).
    points: Vec<(SimTime, usize)>,
}

impl CapacityProfile {
    fn new(n_gpus: usize) -> Self {
        CapacityProfile {
            points: vec![(SimTime::ZERO, n_gpus)],
        }
    }

    /// Free capacity at `t`.
    fn free_at(&self, t: SimTime) -> usize {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Earliest `start ≥ from` such that `width` GPUs are free over
    /// `[start, start + dur)` and `start + dur ≤ by`.
    fn earliest_fit(
        &self,
        from: SimTime,
        dur: SimDuration,
        width: usize,
        by: SimTime,
    ) -> Option<SimTime> {
        let mut candidate = from;
        loop {
            if candidate + dur > by {
                return None;
            }
            // Scan the window for the first under-capacity break point.
            let end = candidate + dur;
            let mut blocked_at: Option<SimTime> = None;
            if self.free_at(candidate) < width {
                blocked_at = Some(candidate);
            } else {
                for &(pt, free) in &self.points {
                    if pt > candidate && pt < end && free < width {
                        blocked_at = Some(pt);
                        break;
                    }
                }
            }
            match blocked_at {
                None => return Some(candidate),
                Some(b) => {
                    // Jump to the next point after the blockage where
                    // capacity recovers.
                    let next = self
                        .points
                        .iter()
                        .find(|&&(pt, free)| pt > b && free >= width)
                        .map(|&(pt, _)| pt)?;
                    candidate = next.max(from);
                }
            }
        }
    }

    /// Reserves `width` GPUs over `[start, start + dur)`.
    ///
    /// # Panics
    ///
    /// Panics if the window lacks capacity (callers must fit first).
    fn reserve(&mut self, start: SimTime, dur: SimDuration, width: usize) {
        let end = start + dur;
        // Ensure break points exist at start and end.
        for t in [start, end] {
            if let Err(i) = self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
                let level = self.points[i - 1].1;
                self.points.insert(i, (t, level));
            }
        }
        for (pt, free) in self.points.iter_mut() {
            if *pt >= start && *pt < end {
                assert!(*free >= width, "reservation exceeds capacity at {pt}");
                *free -= width;
            }
        }
    }
}

/// Plans the instance: earliest-deadline-first admission, each request at
/// the cheapest degree (fewest GPU-seconds) that still meets its deadline
/// given earlier reservations; unplaceable requests are sacrificed.
///
/// # Examples
///
/// ```
/// use tetriserve_exact::oracle::{plan_oracle, OracleInstance, OracleRequest};
/// use tetriserve_simulator::time::{SimDuration, SimTime};
///
/// let mut service = [None; 8];
/// service[0] = Some(SimDuration::from_millis(800)); // SP=1
/// service[1] = Some(SimDuration::from_millis(400)); // SP=2
/// let inst = OracleInstance {
///     n_gpus: 2,
///     degrees: vec![1, 2],
///     requests: vec![OracleRequest {
///         arrival: SimTime::ZERO,
///         deadline: SimTime::from_millis(500),
///         service,
///     }],
/// };
/// let plan = plan_oracle(&inst);
/// assert_eq!(plan.served, 1);
/// assert_eq!(plan.bookings[0].unwrap().degree, 2, "only SP=2 meets 500 ms");
/// ```
pub fn plan_oracle(inst: &OracleInstance) -> OraclePlan {
    assert!(inst.degrees.len() <= 8, "oracle supports at most 8 degrees");
    let mut order: Vec<usize> = (0..inst.requests.len()).collect();
    order.sort_by_key(|&i| (inst.requests[i].deadline, inst.requests[i].arrival));

    let mut profile = CapacityProfile::new(inst.n_gpus);
    let mut bookings: Vec<Option<OracleBooking>> = vec![None; inst.requests.len()];
    let mut served = 0;

    for i in order {
        let req = &inst.requests[i];
        // Candidate (gpu_seconds, degree, start) tuples; pick min cost.
        let mut best: Option<(f64, usize, SimTime, SimDuration)> = None;
        for (di, &k) in inst.degrees.iter().enumerate() {
            let Some(Some(dur)) = req.service.get(di).copied() else {
                continue;
            };
            if k > inst.n_gpus {
                continue;
            }
            let Some(start) = profile.earliest_fit(req.arrival, dur, k, req.deadline) else {
                continue;
            };
            let cost = k as f64 * dur.as_secs_f64();
            match best {
                Some((c, ..)) if c <= cost => {}
                _ => best = Some((cost, k, start, dur)),
            }
        }
        if let Some((_, k, start, dur)) = best {
            profile.reserve(start, dur, k);
            bookings[i] = Some(OracleBooking {
                start,
                degree: k,
                end: start + dur,
            });
            served += 1;
        }
    }

    OraclePlan { bookings, served }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival_ms: u64, deadline_ms: u64, t1_ms: u64) -> OracleRequest {
        // Perfect halving across degrees 1/2/4/8.
        let mut service = [None; 8];
        for (i, k) in [1u64, 2, 4, 8].into_iter().enumerate() {
            service[i] = Some(SimDuration::from_millis(t1_ms / k));
        }
        OracleRequest {
            arrival: SimTime::from_millis(arrival_ms),
            deadline: SimTime::from_millis(deadline_ms),
            service,
        }
    }

    fn instance(requests: Vec<OracleRequest>) -> OracleInstance {
        OracleInstance {
            n_gpus: 8,
            degrees: vec![1, 2, 4, 8],
            requests,
        }
    }

    #[test]
    fn relaxed_request_books_cheapest_degree() {
        let plan = plan_oracle(&instance(vec![req(0, 10_000, 800)]));
        assert_eq!(plan.served, 1);
        assert_eq!(plan.bookings[0].unwrap().degree, 1);
    }

    #[test]
    fn tight_request_books_a_wide_degree() {
        // 800 ms of work due in 150 ms: needs SP=8 (100 ms).
        let plan = plan_oracle(&instance(vec![req(0, 150, 800)]));
        assert_eq!(plan.served, 1);
        assert_eq!(plan.bookings[0].unwrap().degree, 8);
    }

    #[test]
    fn parallel_requests_share_capacity() {
        // Eight relaxed requests, each SP=1, all fit side by side. (The
        // service time must divide evenly by every degree, or integer
        // rounding makes wider degrees spuriously cheaper.)
        let plan = plan_oracle(&instance((0..8).map(|_| req(0, 10_000, 800)).collect()));
        assert_eq!(plan.served, 8);
        let starts: Vec<SimTime> = plan.bookings.iter().map(|b| b.unwrap().start).collect();
        assert!(starts.iter().all(|&s| s == SimTime::ZERO), "{starts:?}");
    }

    #[test]
    fn overload_sacrifices_the_minimum() {
        // Two full-node requests with the same tight window: one must die.
        let plan = plan_oracle(&instance(vec![req(0, 110, 800), req(0, 110, 800)]));
        assert_eq!(plan.served, 1);
    }

    #[test]
    fn clairvoyance_orders_around_future_arrivals() {
        // A loose request and a later tight one: the oracle books the tight
        // window first (EDF), fitting both; naive FIFO at SP=8 would not.
        let loose = req(0, 2_000, 800); // deadline 2.0 s
        let tight = req(100, 300, 800); // needs SP=8 in [100, 300]
        let plan = plan_oracle(&instance(vec![loose, tight]));
        assert_eq!(plan.served, 2, "{plan:?}");
        let b_tight = plan.bookings[1].unwrap();
        // Any sufficiently wide degree works (SP=4 and SP=8 tie on cost).
        assert!(b_tight.degree >= 4, "{b_tight:?}");
        assert!(b_tight.end <= SimTime::from_millis(300));
    }

    #[test]
    fn reservations_never_oversubscribe() {
        let plan = plan_oracle(&instance(
            (0..20).map(|i| req(i * 37, i * 37 + 600, 400)).collect(),
        ));
        // Re-check capacity from the bookings.
        let mut events: Vec<(SimTime, i64)> = Vec::new();
        for b in plan.bookings.iter().flatten() {
            events.push((b.start, b.degree as i64));
            events.push((b.end, -(b.degree as i64)));
        }
        events.sort();
        let mut level = 0;
        for (_, d) in events {
            level += d;
            assert!(level <= 8, "oversubscribed: {level}");
        }
        assert!(plan.served >= 18, "served {}", plan.served);
    }

    #[test]
    fn sar_helper() {
        let plan = plan_oracle(&instance(vec![req(0, 10_000, 100)]));
        assert!((plan.sar(1) - 1.0).abs() < 1e-12);
        assert_eq!(plan_oracle(&instance(vec![])).sar(0), 1.0);
    }
}
