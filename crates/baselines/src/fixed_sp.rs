//! The xDiT fixed-sequence-parallelism baseline.
//!
//! Models xDiT as evaluated in the paper (§6.1 "Baselines"): a constant SP
//! degree `k` for every request, non-preemptive execution, FIFO admission.
//! The node is statically partitioned into `N/k` worker slots of `k`
//! adjacent GPUs each; an arriving request is dispatched *in its entirety*
//! onto the first free slot and holds it until completion. Everything the
//! paper criticises about this design — head-of-line blocking behind large
//! requests, idle GPUs when the queue holds only small requests, no
//! deadline awareness — emerges naturally.

use tetriserve_core::policy::{DispatchPlan, Policy, PolicyEvent, SchedContext};
use tetriserve_simulator::gpuset::GpuSet;
use tetriserve_simulator::time::SimTime;

/// xDiT with a fixed sequence-parallel degree.
#[derive(Debug, Clone)]
pub struct FixedSpPolicy {
    degree: usize,
}

impl FixedSpPolicy {
    /// Creates the baseline with the given constant degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or not a power of two.
    pub fn new(degree: usize) -> Self {
        assert!(
            degree > 0 && degree.is_power_of_two(),
            "sequence parallel degree must be a positive power of two, got {degree}"
        );
        FixedSpPolicy { degree }
    }

    /// The constant degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The static GPU slots this degree partitions an `n`-GPU node into.
    pub fn slots(&self, n_gpus: usize) -> Vec<GpuSet> {
        (0..n_gpus / self.degree)
            .map(|i| GpuSet::contiguous(i * self.degree, self.degree))
            .collect()
    }
}

impl Policy for FixedSpPolicy {
    fn name(&self) -> String {
        format!("xDiT SP={}", self.degree)
    }

    fn reacts_to(&self, event: PolicyEvent) -> bool {
        matches!(event, PolicyEvent::Arrival | PolicyEvent::DispatchDone)
    }

    fn next_tick(&self, _now: SimTime) -> Option<SimTime> {
        None // purely event-driven
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<DispatchPlan> {
        let mut plans = Vec::new();
        let mut free = ctx.free;
        // FIFO by request id (ids are assigned in arrival order by the
        // workload generator).
        let queue = ctx.tracker.schedulable_ids(ctx.now);
        for id in queue {
            // First statically partitioned slot that is entirely free.
            let Some(slot) = self
                .slots(ctx.n_gpus)
                .into_iter()
                .find(|s| free.is_superset_of(*s))
            else {
                break; // head-of-line blocking: FIFO never skips
            };
            let r = ctx.tracker.get(id).expect("schedulable id is tracked");
            free = free.difference(slot);
            plans.push(DispatchPlan {
                requests: vec![id],
                gpus: slot,
                steps: r.remaining_steps,
            });
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_core::request::RequestSpec;
    use tetriserve_core::server::Server;
    use tetriserve_core::tracker::RequestTracker;
    use tetriserve_costmodel::{ClusterSpec, DitModel, Profiler, Resolution};
    use tetriserve_simulator::trace::{RequestId, TenantId};

    fn costs() -> tetriserve_costmodel::CostTable {
        Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
    }

    fn spec(id: u64, res: Resolution, arrival_s: f64, slo_s: f64) -> RequestSpec {
        RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: res,
            arrival: SimTime::from_secs_f64(arrival_s),
            deadline: SimTime::from_secs_f64(arrival_s + slo_s),
            total_steps: 50,
            stages: tetriserve_costmodel::StageProfile::FLAT,
        }
    }

    #[test]
    fn slots_partition_the_node() {
        let p = FixedSpPolicy::new(2);
        let slots = p.slots(8);
        assert_eq!(slots.len(), 4);
        let union = slots.iter().fold(GpuSet::EMPTY, |a, s| a.union(*s));
        assert_eq!(union, GpuSet::first_n(8));
    }

    #[test]
    fn whole_request_runs_on_one_slot() {
        let c = costs();
        let report =
            Server::new(c, FixedSpPolicy::new(4)).run(vec![spec(0, Resolution::R1024, 0.0, 3.0)]);
        let o = &report.outcomes[0];
        assert!(o.met_slo(), "{o:?}");
        assert_eq!(o.steps_executed, 50);
        assert!((o.mean_sp_degree() - 4.0).abs() < 1e-9, "constant degree");
    }

    #[test]
    fn sp1_meets_small_but_misses_large() {
        // The Figure 1 / Figure 4 story: SP=1 is fine for 256² but
        // hopeless for 2048².
        let c = costs();
        let report = Server::new(c, FixedSpPolicy::new(1)).run(vec![
            spec(0, Resolution::R256, 0.0, 1.5),
            spec(1, Resolution::R2048, 0.0, 5.0),
        ]);
        assert!(report.outcomes[0].met_slo());
        assert!(!report.outcomes[1].met_slo());
    }

    #[test]
    fn sp8_meets_large_but_serialises_everything() {
        // SP=8 has one slot: requests run one-at-a-time, so a burst of
        // small requests queues behind each other (head-of-line blocking).
        let c = costs();
        let burst: Vec<_> = (0..6)
            .map(|i| spec(i, Resolution::R512, 0.0, 2.0))
            .collect();
        let report = Server::new(c, FixedSpPolicy::new(8)).run(burst);
        let met = report.outcomes.iter().filter(|o| o.met_slo()).count();
        assert!(met < 6, "serialisation must cost SLOs, met {met}/6");
        // And all of them eventually complete.
        assert!(report.outcomes.iter().all(|o| o.completion.is_some()));
    }

    #[test]
    fn head_of_line_blocking_is_real() {
        // SP=4 (two slots). Two big requests occupy both slots; a tiny
        // request behind them waits even though it only needs a moment.
        let c = costs();
        let report = Server::new(c, FixedSpPolicy::new(4)).run(vec![
            spec(0, Resolution::R2048, 0.0, 30.0),
            spec(1, Resolution::R2048, 0.0, 30.0),
            spec(2, Resolution::R256, 0.1, 1.5),
        ]);
        assert!(!report.outcomes[2].met_slo(), "{:?}", report.outcomes[2]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_degree() {
        FixedSpPolicy::new(3);
    }

    #[test]
    fn event_driven_not_round_driven() {
        let p = FixedSpPolicy::new(2);
        assert_eq!(p.next_tick(SimTime::ZERO), None);
        assert!(p.reacts_to(PolicyEvent::Arrival));
        assert!(p.reacts_to(PolicyEvent::DispatchDone));
        assert!(!p.reacts_to(PolicyEvent::RoundTick));
    }

    #[test]
    fn schedules_fifo_into_free_slots() {
        let c = costs();
        let mut tracker = RequestTracker::new();
        for id in 0..3 {
            tracker.admit(spec(id, Resolution::R512, 0.0, 5.0));
        }
        let mut p = FixedSpPolicy::new(4);
        let failures = tetriserve_simulator::failure::FailurePlan::none();
        let ctx = SchedContext {
            now: SimTime::ZERO,
            free: GpuSet::first_n(8),
            healthy: GpuSet::first_n(8),
            n_gpus: 8,
            tracker: &tracker,
            costs: &c,
            failures: &failures,
        };
        let plans = p.schedule(&ctx);
        assert_eq!(plans.len(), 2, "two SP=4 slots");
        assert_eq!(plans[0].requests, vec![RequestId(0)]);
        assert_eq!(plans[1].requests, vec![RequestId(1)]);
    }
}
