//! Resolution-Specific SP (RSSP) — the oracle static baseline.
//!
//! §6.1: *"Selects the best SP degree per resolution via offline profiling
//! … Represents an oracle static configuration."* On our calibrated cost
//! model the profiled choices are derived rather than hard-coded: for each
//! resolution, the smallest degree whose isolated request latency fits the
//! resolution's base SLO (falling back to the fastest degree when nothing
//! fits). Requests are admitted FIFO; each runs non-preemptively at its
//! resolution's degree on an aligned GPU block. Like xDiT, RSSP is blind to
//! deadlines and cannot adapt at runtime — which is exactly why TetriServe
//! beats it (§6.2: "RSSP is a restricted variant of TetriServe").

use std::collections::BTreeMap;

use tetriserve_core::policy::{DispatchPlan, Policy, PolicyEvent, SchedContext};
use tetriserve_costmodel::{CostTable, Resolution};
use tetriserve_simulator::time::{SimDuration, SimTime};

/// The RSSP baseline policy.
#[derive(Debug, Clone)]
pub struct RsspPolicy {
    degree_by_tokens: BTreeMap<u64, usize>,
}

impl RsspPolicy {
    /// Derives the per-resolution degree table by offline profiling: the
    /// smallest degree whose isolated latency (steps × T(k) + decode) fits
    /// the resolution's base SLO from `slo_targets`; if none fits, the
    /// fastest degree.
    ///
    /// # Panics
    ///
    /// Panics if `slo_targets` misses a profiled resolution.
    pub fn from_profile(
        costs: &CostTable,
        slo_targets: &BTreeMap<Resolution, SimDuration>,
    ) -> Self {
        let steps = costs.model().steps;
        let mut degree_by_tokens = BTreeMap::new();
        for &res in costs.resolutions() {
            let slo = *slo_targets
                .get(&res)
                .unwrap_or_else(|| panic!("no SLO target for {res}"));
            let decode = costs
                .model()
                .decode_time(res, costs.cluster().gpu.effective_tflops());
            let chosen = costs
                .degrees()
                .iter()
                .copied()
                .find(|&k| costs.step_time(res, k, 1) * u64::from(steps) + decode <= slo)
                .unwrap_or_else(|| costs.fastest_degree(res));
            degree_by_tokens.insert(res.tokens(), chosen);
        }
        RsspPolicy { degree_by_tokens }
    }

    /// Builds RSSP with an explicit per-resolution degree table.
    ///
    /// # Panics
    ///
    /// Panics if any degree is not a positive power of two.
    pub fn with_table<I: IntoIterator<Item = (Resolution, usize)>>(table: I) -> Self {
        let degree_by_tokens = table
            .into_iter()
            .map(|(res, k)| {
                assert!(
                    k > 0 && k.is_power_of_two(),
                    "degree {k} for {res} must be a positive power of two"
                );
                (res.tokens(), k)
            })
            .collect();
        RsspPolicy { degree_by_tokens }
    }

    /// The degree chosen for `res`.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not in the table.
    pub fn degree_for(&self, res: Resolution) -> usize {
        *self
            .degree_by_tokens
            .get(&res.tokens())
            .unwrap_or_else(|| panic!("RSSP has no degree for {res}"))
    }
}

impl Policy for RsspPolicy {
    fn name(&self) -> String {
        "RSSP".to_owned()
    }

    fn reacts_to(&self, event: PolicyEvent) -> bool {
        matches!(event, PolicyEvent::Arrival | PolicyEvent::DispatchDone)
    }

    fn next_tick(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<DispatchPlan> {
        let mut plans = Vec::new();
        let mut free = ctx.free;
        for id in ctx.tracker.schedulable_ids(ctx.now) {
            let r = ctx.tracker.get(id).expect("schedulable id is tracked");
            let k = self.degree_for(r.spec.resolution);
            // Aligned block of the needed size; FIFO blocks if the head's
            // block size is unavailable (no skipping).
            let topo = ctx.costs.cluster().topology();
            let Some(block) = topo
                .aligned_blocks(k)
                .into_iter()
                .find(|b| free.is_superset_of(*b))
            else {
                break;
            };
            free = free.difference(block);
            plans.push(DispatchPlan {
                requests: vec![id],
                gpus: block,
                steps: r.remaining_steps,
            });
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_core::request::RequestSpec;
    use tetriserve_core::server::Server;
    use tetriserve_costmodel::{ClusterSpec, DitModel, Profiler};
    use tetriserve_simulator::trace::{RequestId, TenantId};

    fn costs() -> CostTable {
        Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
    }

    /// The paper's base SLO targets (§6.1).
    fn slo_targets() -> BTreeMap<Resolution, SimDuration> {
        BTreeMap::from([
            (Resolution::R256, SimDuration::from_secs_f64(1.5)),
            (Resolution::R512, SimDuration::from_secs_f64(2.0)),
            (Resolution::R1024, SimDuration::from_secs_f64(3.0)),
            (Resolution::R2048, SimDuration::from_secs_f64(5.0)),
        ])
    }

    #[test]
    fn profiled_table_matches_calibration() {
        let p = RsspPolicy::from_profile(&costs(), &slo_targets());
        // On the calibrated FLUX/H100 model: 256 and 512 fit on one GPU,
        // 1024 needs SP=4, 2048 needs SP=8.
        assert_eq!(p.degree_for(Resolution::R256), 1);
        assert_eq!(p.degree_for(Resolution::R512), 1);
        assert_eq!(p.degree_for(Resolution::R1024), 4);
        assert_eq!(p.degree_for(Resolution::R2048), 8);
    }

    #[test]
    fn explicit_table_round_trips() {
        let p = RsspPolicy::with_table([(Resolution::R256, 1), (Resolution::R2048, 8)]);
        assert_eq!(p.degree_for(Resolution::R256), 1);
        assert_eq!(p.degree_for(Resolution::R2048), 8);
    }

    #[test]
    fn isolated_requests_meet_their_base_slos() {
        let c = costs();
        let p = RsspPolicy::from_profile(&c, &slo_targets());
        let specs: Vec<RequestSpec> = [
            (0u64, Resolution::R256, 1.5),
            (1, Resolution::R512, 2.0),
            (2, Resolution::R1024, 3.0),
            (3, Resolution::R2048, 5.0),
        ]
        .into_iter()
        .map(|(id, res, slo)| RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: res,
            arrival: SimTime::from_secs_f64(id as f64 * 40.0), // well spaced
            deadline: SimTime::from_secs_f64(id as f64 * 40.0 + slo),
            total_steps: 50,
            stages: tetriserve_costmodel::StageProfile::FLAT,
        })
        .collect();
        let report = Server::new(c, p).run(specs);
        assert_eq!(report.sar(), 1.0, "{:#?}", report.outcomes);
    }

    #[test]
    fn no_runtime_adaptation_under_pressure() {
        // Two simultaneous 2048² requests both "need" SP=8; RSSP serialises
        // them and the second misses — TetriServe would have split 4+4 or
        // reordered. This is the rigidity §6.2 describes.
        let c = costs();
        let p = RsspPolicy::from_profile(&c, &slo_targets());
        let mk = |id, slo: f64| RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: Resolution::R2048,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_secs_f64(slo),
            total_steps: 50,
            stages: tetriserve_costmodel::StageProfile::FLAT,
        };
        let report = Server::new(c, p).run(vec![mk(0, 5.0), mk(1, 5.0)]);
        let met = report.outcomes.iter().filter(|o| o.met_slo()).count();
        assert_eq!(met, 1);
    }

    #[test]
    #[should_panic(expected = "no degree for")]
    fn unknown_resolution_panics() {
        RsspPolicy::with_table([(Resolution::R256, 1)]).degree_for(Resolution::R2048);
    }
}
