//! EDF-RSSP: an earliest-deadline-first extension of RSSP (not in the
//! paper; an ablation this reproduction adds).
//!
//! RSSP is deadline-*blind* FIFO; TetriServe is deadline-aware *and*
//! adapts parallelism per step. EDF-RSSP sits between them: requests run at
//! RSSP's static per-resolution degrees, but the queue is ordered by
//! deadline and hopeless requests (those that cannot meet their deadline
//! even if started now) are deferred behind savable ones. Comparing the
//! three separates how much of TetriServe's win comes from deadline
//! awareness alone versus step-level parallelism adaptation.

use std::collections::BTreeMap;

use tetriserve_core::policy::{DispatchPlan, Policy, PolicyEvent, SchedContext};
use tetriserve_costmodel::{CostTable, Resolution};
use tetriserve_simulator::time::{SimDuration, SimTime};

use crate::rssp::RsspPolicy;

/// The EDF-ordered static-degree baseline.
#[derive(Debug, Clone)]
pub struct EdfRsspPolicy {
    inner: RsspPolicy,
}

impl EdfRsspPolicy {
    /// Derives the per-resolution degree table exactly like
    /// [`RsspPolicy::from_profile`].
    pub fn from_profile(
        costs: &CostTable,
        slo_targets: &BTreeMap<Resolution, SimDuration>,
    ) -> Self {
        EdfRsspPolicy {
            inner: RsspPolicy::from_profile(costs, slo_targets),
        }
    }

    /// The static degree for a resolution.
    pub fn degree_for(&self, res: Resolution) -> usize {
        self.inner.degree_for(res)
    }
}

impl Policy for EdfRsspPolicy {
    fn name(&self) -> String {
        "EDF-RSSP".to_owned()
    }

    fn reacts_to(&self, event: PolicyEvent) -> bool {
        matches!(event, PolicyEvent::Arrival | PolicyEvent::DispatchDone)
    }

    fn next_tick(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<DispatchPlan> {
        let mut plans = Vec::new();
        let mut free = ctx.free;
        let topo = ctx.costs.cluster().topology();

        // EDF with hopeless-deferral: savable requests (deadline still
        // reachable if started now) sorted by deadline, then the rest.
        let mut queue = ctx.tracker.schedulable_ids(ctx.now);
        queue.sort_by_key(|id| {
            let r = ctx.tracker.get(*id).expect("tracked");
            let k = self.degree_for(r.spec.resolution);
            let service =
                ctx.costs.step_time(r.spec.resolution, k, 1) * u64::from(r.remaining_steps);
            let hopeless = ctx.now + service > r.spec.deadline;
            (hopeless, r.spec.deadline, *id)
        });

        for id in queue {
            let r = ctx.tracker.get(id).expect("tracked");
            let k = self.degree_for(r.spec.resolution);
            let Some(block) = topo
                .aligned_blocks(k)
                .into_iter()
                .find(|b| free.is_superset_of(*b))
            else {
                // Unlike FIFO, EDF skips a request whose block size is
                // unavailable and tries narrower later arrivals.
                continue;
            };
            free = free.difference(block);
            plans.push(DispatchPlan {
                requests: vec![id],
                gpus: block,
                steps: r.remaining_steps,
            });
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetriserve_core::request::RequestSpec;
    use tetriserve_core::server::Server;
    use tetriserve_core::tracker::RequestTracker;
    use tetriserve_costmodel::{ClusterSpec, DitModel, Profiler};
    use tetriserve_simulator::gpuset::GpuSet;
    use tetriserve_simulator::trace::{RequestId, TenantId};

    fn costs() -> CostTable {
        Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
    }

    fn slo_targets() -> BTreeMap<Resolution, SimDuration> {
        BTreeMap::from([
            (Resolution::R256, SimDuration::from_secs_f64(1.5)),
            (Resolution::R512, SimDuration::from_secs_f64(2.0)),
            (Resolution::R1024, SimDuration::from_secs_f64(3.0)),
            (Resolution::R2048, SimDuration::from_secs_f64(5.0)),
        ])
    }

    fn spec(id: u64, res: Resolution, arrival: f64, slo: f64) -> RequestSpec {
        RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(id),
            resolution: res,
            arrival: SimTime::from_secs_f64(arrival),
            deadline: SimTime::from_secs_f64(arrival + slo),
            total_steps: 50,
            stages: tetriserve_costmodel::StageProfile::FLAT,
        }
    }

    #[test]
    fn orders_by_deadline_not_arrival() {
        let c = costs();
        let mut tracker = RequestTracker::new();
        // Request 0 arrives first but has a later deadline than request 1.
        tracker.admit(spec(0, Resolution::R512, 0.0, 10.0));
        tracker.admit(spec(1, Resolution::R512, 0.0, 2.0));
        let mut p = EdfRsspPolicy::from_profile(&c, &slo_targets());
        let failures = tetriserve_simulator::failure::FailurePlan::none();
        let ctx = SchedContext {
            now: SimTime::ZERO,
            free: GpuSet::single(tetriserve_simulator::gpuset::GpuId(0)),
            healthy: GpuSet::first_n(8),
            n_gpus: 8,
            tracker: &tracker,
            costs: &c,
            failures: &failures,
        };
        let plans = p.schedule(&ctx);
        assert_eq!(plans.len(), 1, "only one free GPU");
        assert_eq!(
            plans[0].requests,
            vec![RequestId(1)],
            "tighter deadline first"
        );
    }

    #[test]
    fn hopeless_requests_yield_to_savable_ones() {
        let c = costs();
        let mut tracker = RequestTracker::new();
        // Hopeless: a 2048² with 1 s left (needs ~4.5 s at SP=8).
        tracker.admit(spec(0, Resolution::R2048, 0.0, 1.0));
        // Savable 2048² with a fresh 5 s budget.
        tracker.admit(spec(1, Resolution::R2048, 0.0, 5.0));
        let mut p = EdfRsspPolicy::from_profile(&c, &slo_targets());
        let failures = tetriserve_simulator::failure::FailurePlan::none();
        let ctx = SchedContext {
            now: SimTime::ZERO,
            free: GpuSet::first_n(8),
            healthy: GpuSet::first_n(8),
            n_gpus: 8,
            tracker: &tracker,
            costs: &c,
            failures: &failures,
        };
        let plans = p.schedule(&ctx);
        assert_eq!(
            plans[0].requests,
            vec![RequestId(1)],
            "savable first despite later deadline"
        );
    }

    #[test]
    fn edf_beats_fifo_rssp_under_contention() {
        // A late-arriving tight request behind a loose head: FIFO kills it,
        // EDF saves it.
        let c = costs();
        let specs = vec![
            spec(0, Resolution::R1024, 0.0, 30.0), // loose head
            spec(1, Resolution::R1024, 0.1, 3.0),  // tight follower
        ];
        let edf = Server::new(c.clone(), EdfRsspPolicy::from_profile(&c, &slo_targets()))
            .run(specs.clone());
        let fifo = Server::new(c.clone(), RsspPolicy::from_profile(&c, &slo_targets())).run(specs);
        assert!(
            edf.sar() >= fifo.sar(),
            "edf {} fifo {}",
            edf.sar(),
            fifo.sar()
        );
        assert!(
            edf.outcomes[1].met_slo(),
            "EDF must prioritise the tight follower: {:?}",
            edf.outcomes[1]
        );
    }

    #[test]
    fn still_static_in_parallelism() {
        // Every executed step of a request runs at its resolution's fixed
        // degree — no adaptation.
        let c = costs();
        let report = Server::new(c.clone(), EdfRsspPolicy::from_profile(&c, &slo_targets()))
            .run(vec![spec(0, Resolution::R1024, 0.0, 3.0)]);
        let expect =
            EdfRsspPolicy::from_profile(&c, &slo_targets()).degree_for(Resolution::R1024) as f64;
        assert!((report.outcomes[0].mean_sp_degree() - expect).abs() < 1e-9);
    }
}
