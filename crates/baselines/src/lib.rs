//! # tetriserve-baselines
//!
//! The comparison systems from the paper's evaluation (§6.1), implemented
//! on the same serving loop and execution engine as TetriServe so every
//! comparison is apples-to-apples:
//!
//! * [`fixed_sp`] — **xDiT SP=1/2/4/8**: constant sequence-parallel degree,
//!   statically partitioned GPU slots, non-preemptive FIFO;
//! * [`rssp`] — **Resolution-Specific SP**: an oracle static table mapping
//!   each resolution to its profiled best degree, still non-preemptive and
//!   deadline-blind;
//! * [`edf`] — **EDF-RSSP** (this reproduction's ablation): RSSP's static
//!   degrees with earliest-deadline-first ordering, isolating deadline
//!   awareness from step-level parallelism adaptation.
//!
//! # Examples
//!
//! ```
//! use tetriserve_baselines::FixedSpPolicy;
//! use tetriserve_core::Server;
//! use tetriserve_costmodel::{ClusterSpec, DitModel, Profiler};
//!
//! let costs = Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic();
//! let report = Server::new(costs, FixedSpPolicy::new(4)).run(vec![]);
//! assert_eq!(report.policy, "xDiT SP=4");
//! ```

#![warn(missing_docs)]

pub mod edf;
pub mod fixed_sp;
pub mod rssp;

pub use edf::EdfRsspPolicy;
pub use fixed_sp::FixedSpPolicy;
pub use rssp::RsspPolicy;
