//! `tetrictl` — command-line driver for the TetriServe reproduction.
//!
//! ```text
//! tetrictl profile  [--model flux|sd3] [--cluster h100x8|a40x4]
//! tetrictl serve    [--policy tetriserve|sp1|sp2|sp4|sp8|rssp|edf]
//!                   [--model flux|sd3] [--cluster h100x8|a40x4]
//!                   [--mix uniform|skewed|256|512|1024|2048]
//!                   [--rate R] [--scale S] [--requests N] [--seed S]
//!                   [--bursty] [--nirvana]
//! tetrictl compare  [same workload flags]          # all policies, one table
//! tetrictl sweep    --over scales|rates [same workload flags]
//! tetrictl gen      [same workload flags]          # emit the workload as CSV
//! tetrictl serve --trace FILE ...                  # replay a saved CSV trace
//! ```
//!
//! Everything runs on the simulated cluster; no GPUs required.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tetriserve::bench::{ArrivalKind, Experiment, PolicyKind, SLO_SCALES};
use tetriserve::core::TetriServeConfig;
use tetriserve::costmodel::{ClusterSpec, DitModel, Resolution};
use tetriserve::metrics::latency::LatencySummary;
use tetriserve::metrics::report::TextTable;
use tetriserve::metrics::sar::{sar, sar_by_resolution};
use tetriserve::nirvana::NirvanaConfig;
use tetriserve::workload::ResolutionMix;

/// Parsed command line.
#[derive(Debug, Clone)]
struct Cli {
    command: Command,
    experiment: Experiment,
    policy: PolicyKind,
    sweep_over: SweepKind,
    trace_file: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Profile,
    Serve,
    Compare,
    Sweep,
    Gen,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepKind {
    Scales,
    Rates,
}

fn usage() -> String {
    "usage: tetrictl <profile|serve|compare|sweep> [flags]\n\
     flags: --model flux|sd3  --cluster h100x8|a40x4  --policy tetriserve|sp1|sp2|sp4|sp8|rssp|edf\n\
            --mix uniform|skewed|256|512|1024|2048  --rate R  --scale S  --requests N  --seed S\n\
            --bursty  --diurnal  --nirvana  --over scales|rates (sweep only)  --trace FILE (serve replay)"
        .to_owned()
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("profile") => Command::Profile,
        Some("serve") => Command::Serve,
        Some("compare") => Command::Compare,
        Some("sweep") => Command::Sweep,
        Some("gen") => Command::Gen,
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };

    let mut experiment = Experiment::paper_default();
    let mut policy = PolicyKind::TetriServe(TetriServeConfig::default());
    let mut sweep_over = SweepKind::Scales;
    let mut trace_file: Option<String> = None;
    let mut model_flag: Option<String> = None;
    let mut cluster_flag: Option<String> = None;

    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--model" => model_flag = Some(value()?),
            "--cluster" => cluster_flag = Some(value()?),
            "--policy" => {
                policy = match value()?.as_str() {
                    "tetriserve" => PolicyKind::TetriServe(TetriServeConfig::default()),
                    "rssp" => PolicyKind::Rssp,
                    "edf" => PolicyKind::EdfRssp,
                    s if s.starts_with("sp") => {
                        let k: usize = s[2..].parse().map_err(|_| format!("bad policy {s}"))?;
                        PolicyKind::FixedSp(k)
                    }
                    s => return Err(format!("unknown policy {s}")),
                }
            }
            "--mix" => {
                experiment.mix = match value()?.as_str() {
                    "uniform" => ResolutionMix::uniform(),
                    "skewed" => ResolutionMix::skewed(),
                    "256" => ResolutionMix::homogeneous(Resolution::R256),
                    "512" => ResolutionMix::homogeneous(Resolution::R512),
                    "1024" => ResolutionMix::homogeneous(Resolution::R1024),
                    "2048" => ResolutionMix::homogeneous(Resolution::R2048),
                    s => return Err(format!("unknown mix {s}")),
                }
            }
            "--rate" => {
                experiment.rate_per_min =
                    value()?.parse().map_err(|e| format!("bad --rate: {e}"))?
            }
            "--scale" => {
                experiment.slo_scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?
            }
            "--requests" => {
                experiment.n_requests = value()?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seed" => {
                experiment.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--trace" => trace_file = Some(value()?),
            "--bursty" => experiment.arrival = ArrivalKind::Bursty,
            "--diurnal" => experiment.arrival = ArrivalKind::Diurnal,
            "--nirvana" => experiment.nirvana = Some(NirvanaConfig::default()),
            "--over" => {
                sweep_over = match value()?.as_str() {
                    "scales" => SweepKind::Scales,
                    "rates" => SweepKind::Rates,
                    s => return Err(format!("unknown sweep axis {s}")),
                }
            }
            s => return Err(format!("unknown flag {s}\n{}", usage())),
        }
    }

    // Model / cluster pairing: default FLUX on h100x8, SD3 on a40x4.
    match (model_flag.as_deref(), cluster_flag.as_deref()) {
        (None | Some("flux"), None | Some("h100x8")) => {}
        (Some("sd3"), None) | (Some("sd3"), Some("a40x4")) | (None, Some("a40x4")) => {
            experiment.model = DitModel::sd3_medium();
            experiment.cluster = ClusterSpec::a40x4();
        }
        (Some("sd3"), Some("h100x8")) => {
            experiment.model = DitModel::sd3_medium();
        }
        (Some("flux"), Some("a40x4")) => {
            experiment.cluster = ClusterSpec::a40x4();
        }
        (m, c) => return Err(format!("unsupported model/cluster combo {m:?}/{c:?}")),
    }

    Ok(Cli {
        command,
        experiment,
        policy,
        sweep_over,
        trace_file,
    })
}

fn cmd_profile(exp: &Experiment) {
    let costs = exp.cost_table();
    let mut table = TextTable::new(
        format!(
            "profiled step times (ms): {} on {}",
            costs.model().name,
            costs.cluster()
        ),
        {
            let mut h = vec!["resolution".to_owned()];
            h.extend(costs.degrees().iter().map(|k| format!("SP={k}")));
            h.push("T_min deg".to_owned());
            h
        },
    );
    for &res in costs.resolutions() {
        let mut row = vec![res.to_string()];
        for &k in costs.degrees() {
            row.push(format!("{:.2}", costs.step_time(res, k, 1).as_millis_f64()));
        }
        row.push(costs.fastest_degree(res).to_string());
        table.row(row);
    }
    println!("{}", table.render());
}

fn cmd_gen(exp: &Experiment) {
    let records: Vec<_> = exp
        .generate_requests()
        .iter()
        .map(|r| r.to_record())
        .collect();
    print!("{}", tetriserve::workload::to_csv(&records));
}

fn cmd_serve(
    exp: &Experiment,
    policy: &PolicyKind,
    trace_file: Option<&str>,
) -> Result<(), String> {
    let report = match trace_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace {path}: {e}"))?;
            let records =
                tetriserve::workload::from_csv(&text).map_err(|e| format!("bad trace: {e}"))?;
            let specs = Experiment::specs_from_records(&records, exp.model.steps);
            exp.run_specs(policy, specs)
        }
        None => exp.run(policy),
    };
    println!(
        "{} served {} requests ({}, {:.0} req/min, SLO {:.1}x)",
        report.policy,
        report.outcomes.len(),
        exp.mix.name(),
        exp.rate_per_min,
        exp.slo_scale
    );
    let by: BTreeMap<_, _> = sar_by_resolution(&report.outcomes);
    let spider: Vec<String> = by
        .iter()
        .map(|(r, s)| format!("{}: {:.2}", r.label(), s))
        .collect();
    let lat = LatencySummary::from_outcomes(&report.outcomes);
    println!(
        "SAR {:.3} | mean latency {:.2}s | p99 {:.2}s | utilisation {:.0}%",
        sar(&report.outcomes),
        lat.mean().unwrap_or(f64::NAN),
        lat.percentile(99.0).unwrap_or(f64::NAN),
        report.utilization * 100.0
    );
    println!("per-resolution SAR: [{}]", spider.join("  "));
    Ok(())
}

fn cmd_compare(exp: &Experiment) {
    let mut table = TextTable::new(
        format!(
            "policy comparison ({}, {:.0} req/min, SLO {:.1}x)",
            exp.mix.name(),
            exp.rate_per_min,
            exp.slo_scale
        ),
        ["policy", "SAR", "mean lat (s)", "p99 (s)"],
    );
    for (label, report) in exp.run_policies(&PolicyKind::standard_set(&exp.cluster)) {
        let lat = LatencySummary::from_outcomes(&report.outcomes);
        table.row([
            label,
            format!("{:.3}", sar(&report.outcomes)),
            format!("{:.2}", lat.mean().unwrap_or(f64::NAN)),
            format!("{:.2}", lat.percentile(99.0).unwrap_or(f64::NAN)),
        ]);
    }
    println!("{}", table.render());
}

fn cmd_sweep(exp: &Experiment, over: SweepKind) {
    let policies = PolicyKind::standard_set(&exp.cluster);
    let points: Vec<(String, Experiment)> = match over {
        SweepKind::Scales => SLO_SCALES
            .iter()
            .map(|&s| {
                (
                    format!("{s:.1}x"),
                    Experiment {
                        slo_scale: s,
                        ..exp.clone()
                    },
                )
            })
            .collect(),
        SweepKind::Rates => [6.0, 9.0, 12.0, 18.0, 24.0]
            .iter()
            .map(|&r| {
                (
                    format!("{r:.0}/min"),
                    Experiment {
                        rate_per_min: r,
                        ..exp.clone()
                    },
                )
            })
            .collect(),
    };
    let mut header = vec!["policy".to_owned()];
    header.extend(points.iter().map(|(l, _)| l.clone()));
    let mut table = TextTable::new(format!("SAR sweep ({})", exp.mix.name()), header);
    let columns: Vec<Vec<(String, f64)>> = points
        .iter()
        .map(|(_, e)| {
            e.run_policies(&policies)
                .into_iter()
                .map(|(l, r)| (l, sar(&r.outcomes)))
                .collect()
        })
        .collect();
    for p in &policies {
        let label = p.label();
        let mut row = vec![label.clone()];
        for col in &columns {
            let v = col
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, s)| *s)
                .unwrap();
            row.push(format!("{v:.2}"));
        }
        table.row(row);
    }
    println!("{}", table.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cli.command {
        Command::Profile => cmd_profile(&cli.experiment),
        Command::Serve => {
            if let Err(e) = cmd_serve(&cli.experiment, &cli.policy, cli.trace_file.as_deref()) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        Command::Compare => cmd_compare(&cli.experiment),
        Command::Sweep => cmd_sweep(&cli.experiment, cli.sweep_over),
        Command::Gen => cmd_gen(&cli.experiment),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_defaults() {
        let cli = parse(&argv("serve")).unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(
            cli.policy,
            PolicyKind::TetriServe(TetriServeConfig::default())
        );
        assert_eq!(cli.experiment.n_requests, 300);
        assert_eq!(cli.experiment.cluster, ClusterSpec::h100x8());
    }

    #[test]
    fn parses_full_flag_set() {
        let cli = parse(&argv(
            "serve --policy sp4 --mix skewed --rate 18 --scale 1.2 --requests 50 --seed 7 --bursty --nirvana",
        ))
        .unwrap();
        assert_eq!(cli.policy, PolicyKind::FixedSp(4));
        assert_eq!(cli.experiment.rate_per_min, 18.0);
        assert_eq!(cli.experiment.slo_scale, 1.2);
        assert_eq!(cli.experiment.n_requests, 50);
        assert_eq!(cli.experiment.seed, 7);
        assert_eq!(cli.experiment.arrival, ArrivalKind::Bursty);
        assert!(cli.experiment.nirvana.is_some());
        assert_eq!(cli.experiment.mix.name(), "Skewed(α=1)");
    }

    #[test]
    fn sd3_pairs_with_a40_by_default() {
        let cli = parse(&argv("profile --model sd3")).unwrap();
        assert_eq!(cli.experiment.cluster, ClusterSpec::a40x4());
        assert_eq!(cli.experiment.model.name, "SD3-Medium");
    }

    #[test]
    fn sweep_axis_parses() {
        let cli = parse(&argv("sweep --over rates")).unwrap();
        assert_eq!(cli.sweep_over, SweepKind::Rates);
        assert_eq!(cli.command, Command::Sweep);
    }

    #[test]
    fn gen_and_trace_flags_parse() {
        let cli = parse(&argv("gen --requests 5")).unwrap();
        assert_eq!(cli.command, Command::Gen);
        let cli = parse(&argv("serve --trace /tmp/t.csv")).unwrap();
        assert_eq!(cli.trace_file.as_deref(), Some("/tmp/t.csv"));
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(parse(&argv("destroy")).is_err());
        assert!(parse(&argv("serve --policy sp3x")).is_err());
        assert!(parse(&argv("serve --rate")).is_err());
        assert!(parse(&argv("serve --frobnicate 1")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn homogeneous_mix_flags() {
        for (flag, label) in [("256", "Homogeneous(256)"), ("2048", "Homogeneous(2048)")] {
            let cli = parse(&argv(&format!("serve --mix {flag}"))).unwrap();
            assert_eq!(cli.experiment.mix.name(), label);
        }
    }
}
