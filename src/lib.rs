//! # TetriServe (reproduction)
//!
//! A Rust reproduction of **"TetriServe: Efficiently Serving Mixed DiT
//! Workloads"** (ASPLOS 2026): deadline-aware, round-based, step-level
//! sequence-parallel scheduling for diffusion-transformer serving, built on
//! a calibrated discrete-event GPU-cluster simulator.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`simulator`] — the discrete-event GPU cluster substrate;
//! * [`costmodel`] — DiT models, hardware and the profiled `T(k)` tables;
//! * [`core`] — the TetriServe scheduler and the serving framework;
//! * [`baselines`] — xDiT fixed-SP and RSSP comparison policies;
//! * [`workload`] — arrivals, mixes, SLOs and prompts;
//! * [`metrics`] — SAR, latency CDFs and time series;
//! * [`fleet`] — deterministic multi-cluster co-simulation with
//!   cross-cluster routing;
//! * [`traffic`] — the open-loop multi-tenant traffic frontend: live
//!   arrival streams, tenant SLO classes, correlated burst coupling;
//! * [`nirvana`] — approximate-caching acceleration;
//! * [`exact`] — exhaustive / ILP exact schedulers (complexity results);
//! * `bench` — the experiment harness regenerating the paper's artefacts.
//!
//! # Examples
//!
//! ```
//! use tetriserve::bench::{Experiment, PolicyKind};
//! use tetriserve::core::TetriServeConfig;
//!
//! let exp = Experiment {
//!     n_requests: 10,
//!     ..Experiment::paper_default()
//! };
//! let report = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
//! assert_eq!(report.outcomes.len(), 10);
//! ```

#![warn(missing_docs)]

pub use tetriserve_baselines as baselines;
pub use tetriserve_bench as bench;
pub use tetriserve_core as core;
pub use tetriserve_costmodel as costmodel;
pub use tetriserve_exact as exact;
pub use tetriserve_fleet as fleet;
pub use tetriserve_metrics as metrics;
pub use tetriserve_nirvana as nirvana;
pub use tetriserve_simulator as simulator;
pub use tetriserve_traffic as traffic;
pub use tetriserve_workload as workload;
