//! Scale-out beyond the paper's testbeds: the whole stack is generic over
//! node size, so a 16-GPU NVSwitch node (and SP=16) works end to end —
//! degrees, profiling, packing, placement and serving all adapt.

use tetriserve::core::{RequestSpec, Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, DitModel, GpuKind, Profiler, Resolution};
use tetriserve::simulator::time::SimTime;
use tetriserve::simulator::trace::{RequestId, TenantId};

fn h100x16() -> ClusterSpec {
    ClusterSpec {
        gpu: GpuKind::H100,
        n_gpus: 16,
    }
}

#[test]
fn degrees_extend_to_sixteen() {
    let spec = h100x16();
    assert_eq!(spec.sp_degrees(), vec![1, 2, 4, 8, 16]);
    let costs = Profiler::new(DitModel::flux_dev(), spec).analytic();
    assert_eq!(costs.degrees(), &[1, 2, 4, 8, 16]);
    // SP=16 is faster than SP=8 for the largest resolution, but costs more
    // GPU-seconds (Insight 2 extends).
    let t8 = costs.step_time(Resolution::R2048, 8, 1);
    let t16 = costs.step_time(Resolution::R2048, 16, 1);
    assert!(t16 < t8);
    assert!(costs.gpu_seconds(Resolution::R2048, 16) > costs.gpu_seconds(Resolution::R2048, 8));
}

#[test]
fn tetriserve_serves_on_sixteen_gpus() {
    let costs = Profiler::new(DitModel::flux_dev(), h100x16()).analytic();
    // On a node twice as wide as the paper's testbed, requests commonly run
    // at half the maximum degree (min-GPU-hour plans), whose step is ~1.9×
    // the τ anchor step; raise the granularity so those dispatches tile the
    // round (see TetriServeConfig::round_length).
    let config = tetriserve::core::TetriServeConfig::default().granularity(10);
    let policy = TetriServePolicy::new(config, &costs);
    let mk = |id: u64, res, arrival: f64, slo: f64| RequestSpec {
        tenant: TenantId::UNTAGGED,
        id: RequestId(id),
        resolution: res,
        arrival: SimTime::from_secs_f64(arrival),
        deadline: SimTime::from_secs_f64(arrival + slo),
        total_steps: 50,
        stages: tetriserve::costmodel::StageProfile::FLAT,
    };
    // Two simultaneous tight 2048² requests at a 1.1× scale: impossible on
    // 8 GPUs (the second would serialise to ~9 s), comfortable on 16
    // (8 + 8 side by side).
    let report = Server::new(costs, policy).run(vec![
        mk(0, Resolution::R2048, 0.0, 5.5),
        mk(1, Resolution::R2048, 0.0, 5.5),
        mk(2, Resolution::R256, 0.1, 1.65),
    ]);
    assert_eq!(report.sar(), 1.0, "{:#?}", report.outcomes);
}

#[test]
fn audit_passes_on_the_wide_node() {
    let costs = Profiler::new(DitModel::flux_dev(), h100x16()).analytic();
    let config = tetriserve::core::TetriServeConfig::default().granularity(10);
    let policy = TetriServePolicy::new(config, &costs);
    let specs: Vec<RequestSpec> = (0..12)
        .map(|i| RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(i),
            resolution: Resolution::PRODUCTION[(i % 4) as usize],
            arrival: SimTime::from_secs_f64(i as f64 * 0.4),
            deadline: SimTime::from_secs_f64(i as f64 * 0.4 + 6.0),
            total_steps: 50,
            stages: tetriserve::costmodel::StageProfile::FLAT,
        })
        .collect();
    let report = Server::new(costs, policy).run(specs);
    let violations = tetriserve::core::audit::audit(&report.trace, &report.outcomes);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(report.outcomes.iter().all(|o| o.completion.is_some()));
}
