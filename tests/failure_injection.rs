//! Graceful-degradation tests: inject a straggler GPU mid-run and verify
//! the serving stack keeps functioning — every request still completes,
//! determinism is preserved, and TetriServe's adaptivity limits the damage
//! relative to a static policy.

use tetriserve::baselines::FixedSpPolicy;
use tetriserve::core::{Policy, RequestSpec, ServeReport, Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, CostTable, DitModel, Profiler};
use tetriserve::simulator::failure::{FailurePlan, Straggler};
use tetriserve::simulator::gpuset::GpuId;
use tetriserve::simulator::time::SimTime;
use tetriserve::workload::{PoissonProcess, PromptLibrary, ResolutionMix, SloPolicy, TraceGen};
use tetriserve_simulator::trace::RequestId;

fn costs() -> CostTable {
    Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
}

fn workload(n: usize, slo_scale: f64) -> Vec<RequestSpec> {
    let mut gen = TraceGen::new(
        PoissonProcess::new(12.0),
        ResolutionMix::uniform(),
        SloPolicy::paper_targets().scaled(slo_scale),
        PromptLibrary::diffusiondb_like(99),
        99,
    );
    gen.generate(n)
        .into_iter()
        .map(|r| RequestSpec {
            id: RequestId(r.id),
            resolution: r.resolution,
            arrival: SimTime::from_secs_f64(r.arrival_s),
            deadline: SimTime::from_secs_f64(r.deadline_s),
            total_steps: 50,
        })
        .collect()
}

/// One GPU at 3× slowdown for the first ten minutes.
fn throttled_plan() -> FailurePlan {
    FailurePlan::none().with_straggler(Straggler::new(
        GpuId(5),
        3.0,
        SimTime::ZERO,
        SimTime::from_secs_f64(600.0),
    ))
}

fn serve_with_failures<P: Policy>(policy: P, plan: FailurePlan, n: usize) -> ServeReport {
    let mut server = Server::new(costs(), policy);
    server.config_mut().engine.failures = plan;
    server.run(workload(n, 1.5))
}

#[test]
fn all_requests_complete_despite_the_straggler() {
    let c = costs();
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 80);
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.completion.is_some() && o.steps_executed == 50),
        "{:#?}",
        report.outcomes
    );
}

#[test]
fn straggler_costs_some_attainment_but_not_collapse() {
    let c = costs();
    let healthy = serve_with_failures(
        TetriServePolicy::with_defaults(&c),
        FailurePlan::none(),
        100,
    );
    let degraded = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 100);
    assert!(degraded.sar() <= healthy.sar() + 1e-9);
    assert!(
        degraded.sar() > healthy.sar() * 0.6,
        "one slow GPU of eight must not collapse SAR: healthy {} degraded {}",
        healthy.sar(),
        degraded.sar()
    );
}

#[test]
fn wide_static_policies_expose_more_surface_to_the_straggler() {
    // Fixed SP=8 puts every dispatch on the throttled GPU; TetriServe's
    // narrow allocations often avoid it entirely.
    let c = costs();
    let tetri = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 100);
    let sp8 = serve_with_failures(FixedSpPolicy::new(8), throttled_plan(), 100);
    assert!(
        tetri.sar() >= sp8.sar(),
        "tetri {} vs sp8 {}",
        tetri.sar(),
        sp8.sar()
    );
}

#[test]
fn failure_runs_are_deterministic() {
    let c = costs();
    let a = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 60);
    let b = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 60);
    let ca: Vec<_> = a.outcomes.iter().map(|o| o.completion).collect();
    let cb: Vec<_> = b.outcomes.iter().map(|o| o.completion).collect();
    assert_eq!(ca, cb);
}
