//! Graceful-degradation tests: inject a straggler GPU mid-run and verify
//! the serving stack keeps functioning — every request still completes,
//! determinism is preserved, and TetriServe's adaptivity limits the damage
//! relative to a static policy.

use tetriserve::baselines::FixedSpPolicy;
use tetriserve::core::{Policy, RequestSpec, ServeReport, Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, CostTable, DitModel, Profiler};
use tetriserve::simulator::failure::{FailurePlan, GpuFault, Straggler};
use tetriserve::simulator::gpuset::GpuId;
use tetriserve::simulator::time::SimTime;
use tetriserve::workload::{PoissonProcess, PromptLibrary, ResolutionMix, SloPolicy, TraceGen};
use tetriserve_simulator::trace::{RequestId, TenantId};

fn costs() -> CostTable {
    Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
}

fn workload(n: usize, slo_scale: f64) -> Vec<RequestSpec> {
    let mut gen = TraceGen::new(
        PoissonProcess::new(12.0),
        ResolutionMix::uniform(),
        SloPolicy::paper_targets().scaled(slo_scale),
        PromptLibrary::diffusiondb_like(99),
        99,
    );
    gen.generate(n)
        .into_iter()
        .map(|r| RequestSpec {
            tenant: TenantId::UNTAGGED,
            id: RequestId(r.id),
            resolution: r.resolution,
            arrival: SimTime::from_secs_f64(r.arrival_s),
            deadline: SimTime::from_secs_f64(r.deadline_s),
            total_steps: 50,
            stages: tetriserve::costmodel::StageProfile::FLAT,
        })
        .collect()
}

/// One GPU at 3× slowdown for the first ten minutes.
fn throttled_plan() -> FailurePlan {
    FailurePlan::none().with_straggler(Straggler::new(
        GpuId(5),
        3.0,
        SimTime::ZERO,
        SimTime::from_secs_f64(600.0),
    ))
}

fn serve_with_failures<P: Policy>(policy: P, plan: FailurePlan, n: usize) -> ServeReport {
    let mut server = Server::new(costs(), policy);
    server.config_mut().engine.failures = plan;
    server.run(workload(n, 1.5))
}

#[test]
fn all_requests_complete_despite_the_straggler() {
    let c = costs();
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 80);
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.completion.is_some() && o.steps_executed == 50),
        "{:#?}",
        report.outcomes
    );
}

#[test]
fn straggler_costs_some_attainment_but_not_collapse() {
    let c = costs();
    let healthy = serve_with_failures(
        TetriServePolicy::with_defaults(&c),
        FailurePlan::none(),
        100,
    );
    let degraded = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 100);
    assert!(degraded.sar() <= healthy.sar() + 1e-9);
    assert!(
        degraded.sar() > healthy.sar() * 0.6,
        "one slow GPU of eight must not collapse SAR: healthy {} degraded {}",
        healthy.sar(),
        degraded.sar()
    );
}

#[test]
fn wide_static_policies_expose_more_surface_to_the_straggler() {
    // Fixed SP=8 puts every dispatch on the throttled GPU; TetriServe's
    // narrow allocations often avoid it entirely.
    let c = costs();
    let tetri = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 100);
    let sp8 = serve_with_failures(FixedSpPolicy::new(8), throttled_plan(), 100);
    assert!(
        tetri.sar() >= sp8.sar(),
        "tetri {} vs sp8 {}",
        tetri.sar(),
        sp8.sar()
    );
}

#[test]
fn failure_runs_are_deterministic() {
    let c = costs();
    let a = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 60);
    let b = serve_with_failures(TetriServePolicy::with_defaults(&c), throttled_plan(), 60);
    let ca: Vec<_> = a.outcomes.iter().map(|o| o.completion).collect();
    let cb: Vec<_> = b.outcomes.iter().map(|o| o.completion).collect();
    assert_eq!(ca, cb);
}

// ---------------------------------------------------------------------------
// Hard GPU faults: crashes, permanent loss, flapping, and determinism.
// ---------------------------------------------------------------------------

/// GPU 2 crashes inside the busy period (arrivals ramp up around t ≈ 9 s
/// at this arrival rate) and recovers ten seconds later.
fn crash_plan() -> FailurePlan {
    FailurePlan::none().with_fault(GpuFault::transient(
        GpuId(2),
        SimTime::from_secs_f64(10.0),
        SimTime::from_secs_f64(20.0),
    ))
}

#[test]
fn mid_run_crash_loses_no_requests() {
    let c = costs();
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), crash_plan(), 60);
    // The fault lands inside the busy period, so some dispatch must abort…
    assert!(report.aborted_dispatches > 0, "fault did not bite");
    assert!(report.wasted_gpu_seconds > 0.0);
    // …yet every request still finishes its full schedule: aborted work
    // re-enters the next round with its checkpointed steps preserved.
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.completion.is_some() && o.steps_executed == 50),
        "{:#?}",
        report
            .outcomes
            .iter()
            .filter(|o| o.completion.is_none())
            .collect::<Vec<_>>()
    );
}

#[test]
fn permanent_loss_serves_on_the_surviving_gpus() {
    use tetriserve::simulator::trace::TraceEvent;
    let c = costs();
    let plan =
        FailurePlan::none().with_fault(GpuFault::permanent(GpuId(6), SimTime::from_secs_f64(12.0)));
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), plan, 60);
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.completion.is_some() && o.steps_executed == 50),
        "permanent single-GPU loss must not strand requests"
    );
    // After the fault instant no dispatch ever touches the dead GPU.
    let dead = tetriserve::simulator::gpuset::GpuSet::single(GpuId(6));
    for e in report.trace.events() {
        if let TraceEvent::DispatchStart { time, gpus, .. } = e {
            if *time >= SimTime::from_secs_f64(12.0) {
                assert!(gpus.is_disjoint(dead), "dispatch at {time:?} uses dead GPU");
            }
        }
    }
}

#[test]
fn flapping_gpu_is_survivable_and_bounded_by_the_retry_budget() {
    let c = costs();
    // GPU 0 flaps every two seconds across the busy period.
    let mut plan = FailurePlan::none();
    for k in 0..60u64 {
        let t0 = 2.0 * k as f64 + 9.0;
        plan = plan.with_fault(GpuFault::transient(
            GpuId(0),
            SimTime::from_secs_f64(t0),
            SimTime::from_secs_f64(t0 + 0.5),
        ));
    }
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), plan, 60);
    // Every outcome either completed or exhausted its retry budget — the
    // flapping GPU can burn at most (max_retries + 1) attempts per request.
    for o in &report.outcomes {
        assert!(
            o.completion.is_some() || o.retries >= 1,
            "incomplete without any abort: {o:?}"
        );
        assert!(o.retries <= 4, "retry budget exceeded: {o:?}");
    }
    // The vast majority still completes: one flapping GPU of eight is an
    // annoyance, not an outage.
    let done = report
        .outcomes
        .iter()
        .filter(|o| o.completion.is_some())
        .count();
    assert!(
        done * 10 >= report.outcomes.len() * 9,
        "only {done}/{} completed",
        report.outcomes.len()
    );
}

#[test]
fn hard_fault_runs_are_deterministic() {
    let c = costs();
    let a = serve_with_failures(TetriServePolicy::with_defaults(&c), crash_plan(), 60);
    let b = serve_with_failures(TetriServePolicy::with_defaults(&c), crash_plan(), 60);
    let ca: Vec<_> = a
        .outcomes
        .iter()
        .map(|o| (o.completion, o.retries, o.gpu_seconds.to_bits()))
        .collect();
    let cb: Vec<_> = b
        .outcomes
        .iter()
        .map(|o| (o.completion, o.retries, o.gpu_seconds.to_bits()))
        .collect();
    assert_eq!(ca, cb);
    assert_eq!(a.aborted_dispatches, b.aborted_dispatches);
    assert_eq!(
        a.wasted_gpu_seconds.to_bits(),
        b.wasted_gpu_seconds.to_bits(),
        "wasted-GPU-seconds must be bit-for-bit reproducible"
    );
}

#[test]
fn fault_traces_still_audit_clean() {
    use tetriserve::core::audit::audit;
    let c = costs();
    let report = serve_with_failures(TetriServePolicy::with_defaults(&c), crash_plan(), 60);
    let violations = audit(&report.trace, &report.outcomes);
    assert!(violations.is_empty(), "{violations:#?}");
}
