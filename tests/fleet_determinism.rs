//! Same-seed, same-process determinism of the fleet layer, plus the
//! outage re-routing semantics.
//!
//! Fleet runs fold two FNV-1a digests — the routing-decision stream and
//! the fleet-wide outcome set. Both must be bit-identical across
//! back-to-back same-seed runs *in one process*: per-instance hasher
//! seeds, iteration-order leaks, or wall-clock leaking into decisions all
//! show up here immediately.

use tetriserve::bench::fleet::{run_fleet_perf, run_router, FleetPerfConfig};
use tetriserve::core::{Policy, RequestSpec, TetriServeConfig, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, DitModel, Profiler, Resolution};
use tetriserve::fleet::{
    run_fleet, ClusterView, DeadlineAwareRouter, FleetCluster, RouteDecision, Router,
};
use tetriserve::simulator::failure::ClusterOutage;
use tetriserve::simulator::time::SimTime;
use tetriserve::simulator::trace::{RequestId, TenantId};

fn h100_cluster(name: &str) -> FleetCluster {
    let costs = Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic();
    let policy: Box<dyn Policy> =
        Box::new(TetriServePolicy::new(TetriServeConfig::default(), &costs));
    FleetCluster::new(name, costs, policy)
}

fn spec(id: u64, arrival_s: f64, slo_s: f64) -> RequestSpec {
    RequestSpec {
        tenant: TenantId::UNTAGGED,
        id: RequestId(id),
        resolution: Resolution::R1024,
        arrival: SimTime::from_secs_f64(arrival_s),
        deadline: SimTime::from_secs_f64(arrival_s + slo_s),
        total_steps: 50,
        stages: tetriserve::costmodel::StageProfile::FLAT,
    }
}

#[test]
fn same_seed_fleet_digests_are_bit_identical_in_process() {
    // Two full harness runs back to back in one process: every router's
    // routing digest AND outcome digest must match bit for bit. This is
    // the fleet analogue of the single-cluster `determinism_digests`
    // suite and catches per-instance hash seeding anywhere in the
    // routing or aggregation path.
    let config = FleetPerfConfig::smoke();
    let a = run_fleet_perf(&config, "smoke");
    let b = run_fleet_perf(&config, "smoke");
    assert_eq!(a.routers.len(), 4);
    for (ra, rb) in a.routers.iter().zip(&b.routers) {
        assert_eq!(ra.router, rb.router);
        assert_eq!(
            ra.routing_digest, rb.routing_digest,
            "{}: routing digest drifted between same-seed runs",
            ra.router
        );
        assert_eq!(
            ra.outcome_digest, rb.outcome_digest,
            "{}: outcome digest drifted between same-seed runs",
            ra.router
        );
        assert_eq!(ra.routed, rb.routed, "{}", ra.router);
        assert_eq!(ra.rerouted, rb.rerouted, "{}", ra.router);
        assert!((ra.sar - rb.sar).abs() == 0.0, "{}", ra.router);
    }
}

#[test]
fn deadline_aware_beats_round_robin_on_the_bench_scenario() {
    // The fleet layer's core claim, pinned at integration level on the
    // heterogeneous three-cluster scenario: EDF-feasibility-gated routing
    // strictly beats load-blind round-robin on SLO attainment.
    let config = FleetPerfConfig::smoke();
    let rr = run_router(
        &config,
        Box::new(tetriserve::fleet::RoundRobinRouter::new()),
    );
    let da = run_router(&config, Box::new(DeadlineAwareRouter::new()));
    assert!(
        da.sar() > rr.sar(),
        "deadline-aware {} vs round-robin {}",
        da.sar(),
        rr.sar()
    );
}

#[test]
fn outage_reroutes_queued_work_to_the_surviving_cluster() {
    // A router that pins every request to cluster 0 while it is up. The
    // outage fires while later arrivals are still queued fresh behind the
    // first request's dispatch, so they MUST move to cluster 1 and
    // complete there.
    struct PinFirstUp;
    impl Router for PinFirstUp {
        fn name(&self) -> String {
            "pin-first-up".to_owned()
        }
        fn route(&mut self, _spec: &RequestSpec, views: &[ClusterView]) -> RouteDecision {
            views
                .iter()
                .find(|v| v.up)
                .map_or(RouteDecision::Shed, |v| RouteDecision::To(v.index))
        }
    }
    let arrivals = vec![
        spec(0, 0.0, 120.0),
        spec(1, 0.05, 120.0),
        spec(2, 0.10, 120.0),
        spec(3, 0.15, 120.0),
    ];
    let outage = ClusterOutage::permanent(0, SimTime::from_secs_f64(0.5));
    let report = run_fleet(
        vec![h100_cluster("a"), h100_cluster("b")],
        PinFirstUp,
        arrivals,
        vec![outage],
    );
    assert!(
        report.rerouted > 0,
        "the outage must find queued fresh work to move"
    );
    assert_eq!(report.clusters[1].rerouted_in, report.rerouted);
    assert!(
        !report.clusters[1].report.outcomes.is_empty(),
        "re-routed work must land on the surviving cluster"
    );
    assert!(
        report.clusters[1]
            .report
            .outcomes
            .iter()
            .all(|o| o.completion.is_some()),
        "re-routed work must complete on the surviving cluster"
    );
    // Nothing is lost: every request either completed somewhere, was
    // terminally failed on the dead cluster, or was shed.
    assert_eq!(report.total_requests(), 4);
    // Re-routed requests arrive at the outage instant, never before.
    for o in &report.clusters[1].report.outcomes {
        if o.id != RequestId(0) {
            assert!(o.arrival >= SimTime::ZERO);
        }
    }
}

#[test]
fn outage_rerouting_is_deterministic() {
    let run = || {
        let arrivals: Vec<RequestSpec> = (0..12)
            .map(|i| spec(i, f64::from(i as u32) * 0.2, 30.0))
            .collect();
        let outage =
            ClusterOutage::transient(0, SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(5.0));
        run_fleet(
            vec![h100_cluster("a"), h100_cluster("b")],
            DeadlineAwareRouter::new(),
            arrivals,
            vec![outage],
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.routing_digest, b.routing_digest);
    assert_eq!(a.outcome_digest, b.outcome_digest);
    assert_eq!(a.rerouted, b.rerouted);
}
