//! Integration suite for the fleet rebalancer: same-seed determinism
//! with migration in play, request conservation across extract/inject
//! under randomised workloads, and a pinned scenario where migration
//! provably rescues deadlines static routing misses.

use proptest::prelude::*;

use tetriserve::core::{Policy, RequestSpec, TetriServeConfig, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, DitModel, InterClusterLink, Profiler, Resolution};
use tetriserve::fleet::{
    run_fleet, run_fleet_rebalanced, ClusterView, EdfRebalancer, FleetCluster, RouteDecision,
    Router,
};
use tetriserve::metrics::FleetReport;
use tetriserve::simulator::failure::ClusterOutage;
use tetriserve::simulator::time::{SimDuration, SimTime};
use tetriserve::simulator::trace::{RequestId, TenantId};

fn h100_cluster(name: &str) -> FleetCluster {
    let costs = Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic();
    let policy: Box<dyn Policy> =
        Box::new(TetriServePolicy::new(TetriServeConfig::default(), &costs));
    FleetCluster::new(name, costs, policy)
}

fn spec(id: u64, arrival_s: f64, slo_s: f64) -> RequestSpec {
    RequestSpec {
        tenant: TenantId::UNTAGGED,
        id: RequestId(id),
        resolution: Resolution::R1024,
        arrival: SimTime::from_secs_f64(arrival_s),
        deadline: SimTime::from_secs_f64(arrival_s + slo_s),
        total_steps: 50,
        stages: tetriserve::costmodel::StageProfile::FLAT,
    }
}

/// A router that pins every request to the first *up* cluster — the
/// adversarial placement that loads one cluster while others idle, so the
/// rebalancer (not the router) has to fix the imbalance.
struct PinFirstUp;

impl Router for PinFirstUp {
    fn name(&self) -> String {
        "pin-first-up".to_owned()
    }
    fn route(&mut self, _spec: &RequestSpec, views: &[ClusterView]) -> RouteDecision {
        views
            .iter()
            .find(|v| v.up)
            .map_or(RouteDecision::Shed, |v| RouteDecision::To(v.index))
    }
}

/// The pinned rescue scenario: everything lands on cluster 0, whose EDF
/// backlog cannot meet every deadline alone; cluster 1 idles. Static
/// routing never reconsiders placement, so the queue tail misses. The
/// rebalancer's first planning ticks migrate the at-risk tail to
/// cluster 1, where the post-hand-off feasibility test passes.
fn rescue_workload() -> Vec<RequestSpec> {
    // ~6.4 GPU-s each (50 R1024 steps at sp=1) — 24 requests is ~154 GPU-s
    // of demand against ~80 GPU-s of single-cluster capacity inside the
    // 10 s budget, so cluster 0 alone provably cannot meet every deadline.
    (0u64..24).map(|i| spec(i, i as f64 * 0.1, 10.0)).collect()
}

fn run_static(arrivals: Vec<RequestSpec>, outages: Vec<ClusterOutage>) -> FleetReport {
    run_fleet(
        vec![h100_cluster("a"), h100_cluster("b")],
        PinFirstUp,
        arrivals,
        outages,
    )
}

fn run_rebalanced(arrivals: Vec<RequestSpec>, outages: Vec<ClusterOutage>) -> FleetReport {
    run_fleet_rebalanced(
        vec![h100_cluster("a"), h100_cluster("b")],
        PinFirstUp,
        arrivals,
        outages,
        Box::new(EdfRebalancer::new()),
        InterClusterLink::datacenter(),
    )
}

#[test]
fn same_seed_rebalanced_digests_are_bit_identical_in_process() {
    // Two identical rebalanced runs back to back in one process: routing,
    // outcome AND migration digests must match bit for bit — the planner,
    // the hand-off pricing and the enactment order are all deterministic
    // state machines.
    let run = || {
        run_rebalanced(
            rescue_workload(),
            vec![ClusterOutage::transient(
                0,
                SimTime::from_secs_f64(3.0),
                SimTime::from_secs_f64(20.0),
            )],
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.routing_digest, b.routing_digest);
    assert_eq!(a.outcome_digest, b.outcome_digest);
    assert_eq!(a.migration_digest, b.migration_digest);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.rescues, b.rescues);
    assert!(a.migrations > 0, "the scenario must actually migrate");
    assert!(
        a.migration_digest != 0,
        "enacted migrations must fold into the digest"
    );
}

#[test]
fn migration_rescues_deadlines_static_routing_misses() {
    // The tentpole claim, pinned: same workload, same router, same (lack
    // of) outage — adding only the rebalancer strictly raises SLO
    // attainment, and some specific request that missed its deadline under
    // static routing makes it after migrating.
    let stat = run_static(rescue_workload(), vec![]);
    let reb = run_rebalanced(rescue_workload(), vec![]);

    assert_eq!(stat.total_requests(), 24);
    assert_eq!(reb.total_requests(), 24, "migration must conserve requests");
    assert!(reb.migrations > 0, "the rebalancer must migrate the tail");
    assert!(
        reb.sar() > stat.sar(),
        "rebalanced sar {} must strictly beat static sar {}",
        reb.sar(),
        stat.sar()
    );

    let missed_static: Vec<RequestId> = stat
        .all_outcomes()
        .iter()
        .filter(|o| !o.met_slo())
        .map(|o| o.id)
        .collect();
    assert!(
        !missed_static.is_empty(),
        "the pinned workload must overload cluster 0 statically"
    );
    let rebalanced_outcomes = reb.all_outcomes();
    let rescued = missed_static.iter().any(|&id| {
        rebalanced_outcomes
            .iter()
            .any(|o| o.id == id && o.met_slo())
    });
    assert!(
        rescued,
        "at least one statically-missed request must meet its deadline after migration"
    );
    // The rescue really went through cluster 1's queue.
    assert!(
        reb.clusters[1].migrated_in > 0,
        "migrations must land on the idle cluster"
    );
}

#[test]
fn rebalancer_off_matches_the_static_driver_bit_for_bit() {
    // A fleet with no rebalancer attached must reproduce the static
    // driver exactly — rank-2 candidates never exist, and the migration
    // digest stays at its empty-fold value.
    let outage = vec![ClusterOutage::transient(
        0,
        SimTime::from_secs_f64(1.0),
        SimTime::from_secs_f64(4.0),
    )];
    let (a, b) = (
        run_static(rescue_workload(), outage.clone()),
        run_static(rescue_workload(), outage),
    );
    assert_eq!(a.routing_digest, b.routing_digest);
    assert_eq!(a.outcome_digest, b.outcome_digest);
    assert_eq!(a.migrations, 0);
    assert_eq!(a.migration_digest, b.migration_digest);
}

#[test]
fn transient_outage_migrates_partial_work_off_the_down_cluster() {
    // Work with checkpointed progress cannot be drained at the outage
    // (the fresh-work drain skips it) and cannot run on a cluster with
    // zero healthy GPUs — under static routing it waits out the whole
    // window. With the rebalancer, the down cluster's entire queue is
    // at-risk (healthy = 0), so the partial work migrates, pays the
    // latent hand-off, and finishes elsewhere.
    let arrivals: Vec<RequestSpec> = (0u64..8).map(|i| spec(i, i as f64 * 0.1, 40.0)).collect();
    let outage = vec![ClusterOutage::transient(
        0,
        SimTime::from_secs_f64(2.0),
        SimTime::from_secs_f64(60.0),
    )];
    let stat = run_static(arrivals.clone(), outage.clone());
    let reb = run_rebalanced(arrivals, outage);
    assert!(reb.migrations > 0, "the outage must trigger migrations");
    assert!(
        reb.sar() >= stat.sar(),
        "rebalanced sar {} must not lose to static sar {}",
        reb.sar(),
        stat.sar()
    );
    assert!(
        reb.migrated_gpu_seconds > 0.0,
        "partially-denoised work must carry its executed GPU-seconds across"
    );
    // Partial work ships real latent: at least one hand-off paid more
    // than the bare launch latency.
    assert!(reb
        .handoff_delays
        .iter()
        .any(|&d| d > SimDuration::from_micros(250)));
}

#[test]
fn custom_cadence_is_respected_deterministically() {
    let run = |cadence_ms: u64| {
        run_fleet_rebalanced(
            vec![h100_cluster("a"), h100_cluster("b")],
            PinFirstUp,
            rescue_workload(),
            vec![],
            Box::new(EdfRebalancer::with_cadence(SimDuration::from_millis(
                cadence_ms,
            ))),
            InterClusterLink::datacenter(),
        )
    };
    let fast = run(250);
    let slow = run(4_000);
    // Both deterministic; a faster planning clock can only catch at-risk
    // work earlier, never later.
    assert!(fast.migrations >= slow.migrations);
    assert_eq!(run(250).migration_digest, fast.migration_digest);
}

/// Strategy for the conservation proptest: 1–12 requests with arbitrary
/// millisecond arrivals and budgets, plus an arbitrary transient outage
/// window on cluster 0. Requests are sorted and re-id'd so the fleet
/// driver's (arrival, id) precondition holds.
fn conservation_strategy() -> impl Strategy<Value = (Vec<RequestSpec>, u64, u64)> {
    (
        proptest::collection::vec((0u64..20_000, 5_000u64..60_000), 1..12),
        0u64..10_000,
        1u64..30_000,
    )
        .prop_map(|(raw, down_ms, window_ms)| {
            let mut arrivals: Vec<(u64, u64)> = raw;
            arrivals.sort_unstable();
            let specs = arrivals
                .into_iter()
                .enumerate()
                .map(|(i, (arrival_ms, budget_ms))| RequestSpec {
                    tenant: TenantId::UNTAGGED,
                    id: RequestId(i as u64),
                    resolution: Resolution::R1024,
                    arrival: SimTime::from_millis(arrival_ms),
                    deadline: SimTime::from_millis(arrival_ms + budget_ms),
                    total_steps: 50,
                    stages: tetriserve::costmodel::StageProfile::FLAT,
                })
                .collect();
            (specs, down_ms, window_ms)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Migration never creates, loses or duplicates a request: every
    /// input id appears in the fleet-wide outcome set exactly once, no
    /// matter when the outage lands or how the rebalancer shuffles the
    /// queues mid-flight.
    #[test]
    fn migration_conserves_requests(case in conservation_strategy()) {
        let (specs, down_ms, window_ms) = case;
        let outage = ClusterOutage::transient(
            0,
            SimTime::from_millis(down_ms),
            SimTime::from_millis(down_ms + window_ms),
        );
        let n = specs.len();
        let report = run_rebalanced(specs, vec![outage]);
        let outcomes = report.all_outcomes();
        prop_assert_eq!(outcomes.len(), n, "requests created or lost");
        for (i, o) in outcomes.iter().enumerate() {
            prop_assert_eq!(o.id, RequestId(i as u64), "id duplicated or dropped");
        }
        // Per-cluster accounting matches the fleet fold.
        let per_cluster: usize = report
            .clusters
            .iter()
            .map(|c| c.report.outcomes.len())
            .sum();
        prop_assert_eq!(per_cluster + report.fleet_shed.len(), n);
    }
}
