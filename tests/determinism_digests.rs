//! Same-seed, same-process determinism of the scheduling stack.
//!
//! std's `HashMap` seeds its hasher *per map instance*, so two runs inside
//! one process see different hash orders — any decision path that lets a
//! hash-map iteration order reach its output diverges between back-to-back
//! same-seed runs and breaks the PR-2 digest comparisons. Batch formation
//! in `crates/core/src/batching.rs` iterated a `HashMap` until this PR; it
//! happened to be order-insensitive (groups merge independently, removals
//! are sorted, freed sets union commutatively) but was one refactor away
//! from not being. That is exactly why `tetrilint`'s `unordered-iter` rule
//! bans the *pattern* statically instead of trusting a dynamic test to
//! catch the leak: this test pins the end-to-end property, the lint keeps
//! the ways to break it out of the tree.

use tetriserve_bench::{run_perf, PerfConfig};

#[test]
fn same_seed_twice_in_one_process_is_bit_identical() {
    let config = PerfConfig::smoke();
    let a = run_perf(&config, "smoke");
    let b = run_perf(&config, "smoke");

    // Round-loop packing decisions: every (round, request, option, width,
    // steps) tuple hashed in order.
    assert_eq!(a.round_loop.len(), b.round_loop.len());
    for (ra, rb) in a.round_loop.iter().zip(&b.round_loop) {
        assert_eq!(ra.queue_depth, rb.queue_depth);
        assert_eq!(
            ra.decision_digest, rb.decision_digest,
            "decision digest diverged at queue depth {} — a decision path \
             is leaking HashMap iteration order or other ambient state",
            ra.queue_depth
        );
    }

    // End-to-end serve (scheduler + batching + engine + faults): the
    // per-request completion times must match to the microsecond.
    assert_eq!(
        a.serve.outcome_digest, b.serve.outcome_digest,
        "outcome digest diverged between two same-seed serves in one \
         process — batching/scheduling is not order-deterministic"
    );
    assert_eq!(a.serve.completed, b.serve.completed);
    assert_eq!(a.serve.sched_passes, b.serve.sched_passes);
}
