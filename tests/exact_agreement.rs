//! Cross-validation of the exact schedulers (§4.1 / Appendices A–B): the
//! exhaustive step-level solver and the ZILP branch-and-bound must agree on
//! instances expressible in both formulations, and the NP-hardness
//! reduction must preserve feasibility.

use std::time::Duration;

use tetriserve::exact::exhaustive::{solve_exhaustive, ExactInstance, ExactRequest};
use tetriserve::exact::zilp::{rt_feasible, solve_zilp, ZilpInstance, ZilpRequest};

fn secs(s: u64) -> Duration {
    Duration::from_secs(s)
}

/// Builds matching single-step instances for both solvers.
fn paired_instance(
    n_gpus: usize,
    jobs: &[(u64, u64, [u64; 2])], // (arrival, deadline, [T(1), T(2)])
) -> (ExactInstance, ZilpInstance) {
    let exact = ExactInstance {
        n_gpus,
        degrees: vec![1, 2],
        requests: jobs
            .iter()
            .map(|&(a, d, t)| ExactRequest {
                arrival: a,
                deadline: d,
                steps: 1,
                step_time: t.to_vec(),
            })
            .collect(),
    };
    let t_max = jobs.iter().map(|&(_, d, _)| d).max().unwrap_or(0) as u32;
    let zilp = ZilpInstance {
        n_gpus: n_gpus as u32,
        degrees: vec![1, 2],
        t_max,
        requests: jobs
            .iter()
            .map(|&(a, d, t)| ZilpRequest {
                arrival: a as u32,
                deadline: d as u32,
                duration: t.iter().map(|&x| x as u32).collect(),
            })
            .collect(),
    };
    (exact, zilp)
}

#[test]
fn solvers_agree_on_single_step_instances() {
    let cases: Vec<Vec<(u64, u64, [u64; 2])>> = vec![
        vec![(0, 4, [4, 2])],
        vec![(0, 4, [4, 2]), (0, 4, [4, 2])],
        vec![(0, 2, [4, 2]), (0, 2, [4, 2])],
        vec![(0, 3, [2, 1]), (1, 4, [2, 1]), (2, 5, [2, 1])],
        vec![(0, 2, [2, 1]), (0, 2, [2, 1]), (0, 2, [2, 1])],
    ];
    for (i, jobs) in cases.into_iter().enumerate() {
        let (exact, zilp) = paired_instance(2, &jobs);
        let a = solve_exhaustive(&exact, secs(20));
        let b = solve_zilp(&zilp, secs(20));
        assert!(a.complete && b.complete, "case {i} must finish");
        assert_eq!(a.met, b.served, "case {i}: exhaustive vs ZILP");
    }
}

#[test]
fn np_hardness_reduction_round_trips() {
    // Feasible single-machine instance: jobs fit back-to-back.
    assert_eq!(rt_feasible(&[(0, 3, 3), (3, 6, 3)], secs(5)), Some(true));
    // Overloaded window: three unit jobs, two slots.
    assert_eq!(
        rt_feasible(&[(0, 2, 1), (0, 2, 1), (0, 2, 1)], secs(5)),
        Some(false)
    );
    // Order matters: the long job must run before the tight one's window.
    assert_eq!(
        rt_feasible(&[(0, 10, 4), (4, 6, 2)], secs(5)),
        Some(true),
        "long job first, tight job in its exact window"
    );
    // Non-preemptive infeasibility: lengthening the long job to 6 leaves no
    // contiguous slot on either side of the tight window.
    assert_eq!(rt_feasible(&[(0, 10, 6), (4, 6, 2)], secs(5)), Some(false));
}

#[test]
fn exhaustive_prefers_cheaper_schedules_on_ties() {
    // Both degrees meet the deadline; the solver must report the
    // GPU-time-minimal schedule (1 GPU × 4 = 4, vs 2 GPUs × 2 = 4 — equal
    // here, so try asymmetric costs).
    let inst = ExactInstance {
        n_gpus: 2,
        degrees: vec![1, 2],
        requests: vec![ExactRequest {
            arrival: 0,
            deadline: 100,
            steps: 1,
            step_time: vec![4, 3], // k·T: 4 vs 6
        }],
    };
    let sol = solve_exhaustive(&inst, secs(5));
    assert_eq!(sol.met, 1);
    assert_eq!(sol.gpu_time, 4, "narrow execution is cheaper");
}
