//! Integration tests for the Table 5 ablation and the Table 3 Nirvana
//! composition.

use tetriserve::bench::{Experiment, PolicyKind};
use tetriserve::core::TetriServeConfig;
use tetriserve::metrics::sar::sar;
use tetriserve::nirvana::NirvanaConfig;
use tetriserve::workload::ResolutionMix;

fn skewed(n: usize) -> Experiment {
    Experiment {
        mix: ResolutionMix::skewed(),
        n_requests: n,
        ..Experiment::paper_default()
    }
}

#[test]
fn full_system_tops_the_ablation() {
    // Table 5's ordering on the contended Skewed mix: the full system
    // (placement + elastic) must beat the bare round scheduler.
    let exp = skewed(150);
    let bare = sar(&exp
        .run(&PolicyKind::TetriServe(TetriServeConfig::schedule_only()))
        .outcomes);
    let full = sar(&exp
        .run(&PolicyKind::TetriServe(TetriServeConfig::default()))
        .outcomes);
    assert!(
        full > bare,
        "full system {full} must beat schedule-only {bare}"
    );
}

#[test]
fn elastic_scale_up_reduces_mean_latency() {
    // Table 5: elastic scale-up's work conservation cuts latency sharply.
    let exp = skewed(150);
    let without = exp.run(&PolicyKind::TetriServe(TetriServeConfig::with_placement()));
    let with = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let ml = |r: &tetriserve::core::ServeReport| {
        tetriserve::metrics::latency::mean_latency(&r.outcomes).unwrap()
    };
    assert!(
        ml(&with) < ml(&without),
        "elastic {} vs placement-only {}",
        ml(&with),
        ml(&without)
    );
}

#[test]
fn nirvana_composition_matches_table3_ordering() {
    // RSSP < TetriServe; X < X+Nirvana; TetriServe+Nirvana best overall.
    let base = skewed(150);
    let cached = Experiment {
        nirvana: Some(NirvanaConfig::default()),
        ..base.clone()
    };
    let tetri = PolicyKind::TetriServe(TetriServeConfig::default());
    let rssp_plain = sar(&base.run(&PolicyKind::Rssp).outcomes);
    let tetri_plain = sar(&base.run(&tetri).outcomes);
    let rssp_cached = sar(&cached.run(&PolicyKind::Rssp).outcomes);
    let tetri_cached = sar(&cached.run(&tetri).outcomes);

    assert!(tetri_plain > rssp_plain, "{tetri_plain} vs {rssp_plain}");
    assert!(rssp_cached > rssp_plain, "{rssp_cached} vs {rssp_plain}");
    assert!(
        tetri_cached >= tetri_plain,
        "{tetri_cached} vs {tetri_plain}"
    );
    let all = [rssp_plain, tetri_plain, rssp_cached, tetri_cached];
    assert!(
        tetri_cached >= all.into_iter().fold(0.0, f64::max),
        "combined system must be best: {all:?}"
    );
}

#[test]
fn nirvana_reduces_executed_steps() {
    let base = skewed(100);
    let cached = Experiment {
        nirvana: Some(NirvanaConfig::default()),
        ..base.clone()
    };
    let tetri = PolicyKind::TetriServe(TetriServeConfig::default());
    let steps = |r: &tetriserve::core::ServeReport| -> u64 {
        r.outcomes.iter().map(|o| u64::from(o.steps_executed)).sum()
    };
    let plain = steps(&base.run(&tetri));
    let accel = steps(&cached.run(&tetri));
    assert!(
        accel < plain * 9 / 10,
        "cache should skip >10% of steps: {accel} vs {plain}"
    );
}
