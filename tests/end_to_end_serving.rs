//! Cross-crate end-to-end properties of the serving stack: conservation,
//! determinism, work accounting and comparative behaviour on realistic
//! workloads.

use tetriserve::bench::{ArrivalKind, Experiment, PolicyKind};
use tetriserve::core::TetriServeConfig;
use tetriserve::costmodel::Resolution;
use tetriserve::metrics::sar::{mean_gpu_seconds, sar, sar_by_resolution};
use tetriserve::simulator::trace::TraceEvent;

fn experiment(n: usize) -> Experiment {
    Experiment {
        n_requests: n,
        ..Experiment::paper_default()
    }
}

#[test]
fn every_request_runs_exactly_its_steps() {
    let exp = experiment(80);
    for policy in PolicyKind::standard_set(&exp.cluster) {
        let report = exp.run(&policy);
        for o in &report.outcomes {
            assert_eq!(o.steps_executed, 50, "{}: {o:?}", report.policy);
            assert!(o.completion.is_some());
            assert!(o.gpu_seconds > 0.0);
            assert!(o.mean_sp_degree() >= 1.0 && o.mean_sp_degree() <= 8.0);
        }
    }
}

#[test]
fn trace_dispatch_steps_sum_to_work_done() {
    let exp = experiment(50);
    let report = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let mut dispatched_steps: u64 = 0;
    for e in report.trace.events() {
        if let TraceEvent::DispatchStart {
            steps, requests, ..
        } = e
        {
            dispatched_steps += u64::from(*steps) * requests.len() as u64;
        }
    }
    let executed: u64 = report
        .outcomes
        .iter()
        .map(|o| u64::from(o.steps_executed))
        .sum();
    assert_eq!(dispatched_steps, executed, "no step lost or double-counted");
}

#[test]
fn deterministic_across_identical_runs() {
    let exp = experiment(60);
    for policy in [
        PolicyKind::TetriServe(TetriServeConfig::default()),
        PolicyKind::FixedSp(4),
        PolicyKind::Rssp,
    ] {
        let a = exp.run(&policy);
        let b = exp.run(&policy);
        let ca: Vec<_> = a.outcomes.iter().map(|o| o.completion).collect();
        let cb: Vec<_> = b.outcomes.iter().map(|o| o.completion).collect();
        assert_eq!(ca, cb, "{}", policy.label());
    }
}

#[test]
fn tetriserve_is_resolution_balanced() {
    // Fixed SP=1 collapses on the large end; fixed SP=8 pays on the small
    // end; TetriServe must not have a zero column at a loose scale.
    let exp = Experiment {
        slo_scale: 1.5,
        n_requests: 120,
        ..Experiment::paper_default()
    };
    let report = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let by = sar_by_resolution(&report.outcomes);
    for res in Resolution::PRODUCTION {
        assert!(by.get(&res).copied().unwrap_or(0.0) > 0.5, "{res}: {by:?}");
    }
}

#[test]
fn tetriserve_spends_fewer_gpu_seconds_than_fixed_sp8() {
    // Deadline-aware minimal-GPU-hour allocation runs relaxed requests
    // narrow; fixed SP=8 burns the full node on everything.
    let exp = Experiment {
        slo_scale: 1.5,
        n_requests: 100,
        ..Experiment::paper_default()
    };
    let tetri = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let sp8 = exp.run(&PolicyKind::FixedSp(8));
    assert!(
        mean_gpu_seconds(&tetri.outcomes) < mean_gpu_seconds(&sp8.outcomes),
        "tetri {} vs sp8 {}",
        mean_gpu_seconds(&tetri.outcomes),
        mean_gpu_seconds(&sp8.outcomes)
    );
    assert!(sar(&tetri.outcomes) >= sar(&sp8.outcomes));
}

#[test]
fn bursty_arrivals_are_served_stably() {
    let exp = Experiment {
        arrival: ArrivalKind::Bursty,
        slo_scale: 1.5,
        n_requests: 120,
        ..Experiment::paper_default()
    };
    let tetri = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let sp2 = exp.run(&PolicyKind::FixedSp(2));
    assert!(sar(&tetri.outcomes) > sar(&sp2.outcomes));
    assert!(sar(&tetri.outcomes) > 0.7, "{}", sar(&tetri.outcomes));
}

#[test]
fn sd3_on_a40_serves_cleanly() {
    let exp = Experiment {
        n_requests: 60,
        slo_scale: 1.5,
        ..Experiment::sd3_a40()
    };
    for policy in PolicyKind::standard_set(&exp.cluster) {
        let report = exp.run(&policy);
        assert_eq!(report.outcomes.len(), 60, "{}", policy.label());
        assert!(
            report.outcomes.iter().all(|o| o.completion.is_some()),
            "{}",
            policy.label()
        );
    }
}

#[test]
fn slo_scale_monotonically_helps() {
    let policy = PolicyKind::TetriServe(TetriServeConfig::default());
    let mut prev = 0.0;
    for scale in [1.0, 1.25, 1.5] {
        let exp = Experiment {
            slo_scale: scale,
            n_requests: 100,
            ..Experiment::paper_default()
        };
        let s = sar(&exp.run(&policy).outcomes);
        assert!(
            s + 0.05 >= prev,
            "SAR should not collapse as SLOs loosen: {prev} -> {s} at {scale}"
        );
        prev = s;
    }
}

#[test]
fn selective_batching_fires_on_small_heavy_workloads() {
    use tetriserve::metrics::batching::batching_stats;
    use tetriserve::workload::ResolutionMix;
    // A 256²-heavy mix with relaxed SLOs gives the batcher plenty of
    // identical small requests to merge.
    let exp = Experiment {
        mix: ResolutionMix::weighted(
            "small-heavy",
            [
                (tetriserve::costmodel::Resolution::R256, 8.0),
                (tetriserve::costmodel::Resolution::R512, 2.0),
            ],
        ),
        rate_per_min: 40.0,
        slo_scale: 1.5,
        n_requests: 120,
        ..Experiment::paper_default()
    };
    let with = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let stats = batching_stats(&with.trace);
    assert!(
        stats.batched_dispatches > 0,
        "expected batched dispatches: {stats:?}"
    );
    assert!(stats.max_batch >= 2 && stats.max_batch <= 4);

    // And batching must not cost attainment relative to disabling it.
    let cfg = TetriServeConfig {
        selective_batching: false,
        ..TetriServeConfig::default()
    };
    let without = exp.run(&PolicyKind::TetriServe(cfg));
    assert!(
        sar(&with.outcomes) + 0.05 >= sar(&without.outcomes),
        "batching hurt: {} vs {}",
        sar(&with.outcomes),
        sar(&without.outcomes)
    );
    assert_eq!(batching_stats(&without.trace).batched_dispatches, 0);
}
