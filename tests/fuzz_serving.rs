//! Randomised serving fuzz: generate arbitrary (but valid) workloads,
//! serve them under every policy, and audit the resulting traces against
//! the scheduling invariants. Catches cross-component bugs no unit test
//! targets: double-booked GPUs, lost steps, requests served concurrently
//! with themselves.

use proptest::prelude::*;

use tetriserve::baselines::{EdfRsspPolicy, FixedSpPolicy, RsspPolicy};
use tetriserve::core::audit::audit;
use tetriserve::core::{Policy, RequestSpec, ServeReport, Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, CostTable, DitModel, Profiler, Resolution};
use tetriserve::simulator::time::SimTime;
use tetriserve::simulator::trace::{RequestId, TenantId};
use tetriserve::workload::SloPolicy;

fn costs() -> CostTable {
    Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
}

/// Strategy: up to 14 requests with arbitrary arrivals within a minute,
/// arbitrary resolutions, budgets from hopeless to generous, step counts
/// from a cache-truncated 25 to the full 50.
fn workload_strategy() -> impl Strategy<Value = Vec<RequestSpec>> {
    proptest::collection::vec((0u64..60_000, 0usize..4, 200u64..20_000, 25u32..=50), 1..14)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (arrival_ms, res_idx, budget_ms, steps))| RequestSpec {
                    tenant: TenantId::UNTAGGED,
                    id: RequestId(i as u64),
                    resolution: Resolution::PRODUCTION[res_idx],
                    arrival: SimTime::from_millis(arrival_ms),
                    deadline: SimTime::from_millis(arrival_ms + budget_ms),
                    total_steps: steps,
                    stages: tetriserve::costmodel::StageProfile::FLAT,
                })
                .collect()
        })
}

fn check_report(report: &ServeReport, specs: &[RequestSpec]) -> Result<(), TestCaseError> {
    prop_assert_eq!(report.outcomes.len(), specs.len());
    for (o, s) in report.outcomes.iter().zip(specs) {
        prop_assert_eq!(o.id, s.id);
        prop_assert!(
            o.completion.is_some(),
            "{} left {} unserved",
            report.policy,
            s.id
        );
        prop_assert_eq!(o.steps_executed, s.total_steps);
        prop_assert!(o.completion.unwrap() >= s.arrival);
        prop_assert!(o.gpu_seconds > 0.0);
    }
    let violations = audit(&report.trace, &report.outcomes);
    prop_assert!(
        violations.is_empty(),
        "{}: audit violations {:?}",
        report.policy,
        violations
    );
    Ok(())
}

fn serve<P: Policy>(policy: P, specs: Vec<RequestSpec>) -> ServeReport {
    Server::new(costs(), policy).run(specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tetriserve_survives_arbitrary_workloads(specs in workload_strategy()) {
        let c = costs();
        let report = serve(TetriServePolicy::with_defaults(&c), specs.clone());
        check_report(&report, &specs)?;
    }

    #[test]
    fn baselines_survive_arbitrary_workloads(specs in workload_strategy()) {
        let c = costs();
        for report in [
            serve(FixedSpPolicy::new(1), specs.clone()),
            serve(FixedSpPolicy::new(8), specs.clone()),
            serve(RsspPolicy::from_profile(&c, &SloPolicy::paper_targets().base_targets()), specs.clone()),
            serve(EdfRsspPolicy::from_profile(&c, &SloPolicy::paper_targets().base_targets()), specs.clone()),
        ] {
            check_report(&report, &specs)?;
        }
    }

    #[test]
    fn ablated_tetriserve_variants_survive(specs in workload_strategy()) {
        use tetriserve::core::TetriServeConfig;
        let c = costs();
        for cfg in [
            TetriServeConfig::schedule_only(),
            TetriServeConfig::with_placement(),
            TetriServeConfig::default().granularity(1),
            TetriServeConfig::default().granularity(10),
        ] {
            let report = serve(TetriServePolicy::new(cfg, &c), specs.clone());
            check_report(&report, &specs)?;
        }
    }
}
