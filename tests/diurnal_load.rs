//! Diurnal-load extension: slow sinusoidal rate cycles between ~2× and a
//! fraction of the mean rate. A static configuration sized for the mean
//! suffers during peaks; TetriServe's step-level adaptation rides them.

use tetriserve::bench::{ArrivalKind, Experiment, PolicyKind};
use tetriserve::core::TetriServeConfig;
use tetriserve::metrics::sar::sar;
use tetriserve::metrics::timeseries::windowed_sar;

fn diurnal(n: usize, rate: f64) -> Experiment {
    Experiment {
        arrival: ArrivalKind::Diurnal,
        rate_per_min: rate,
        slo_scale: 1.5,
        n_requests: n,
        ..Experiment::paper_default()
    }
}

#[test]
fn everyone_survives_a_load_cycle() {
    let exp = diurnal(150, 12.0);
    for policy in [
        PolicyKind::TetriServe(TetriServeConfig::default()),
        PolicyKind::FixedSp(8),
        PolicyKind::Rssp,
    ] {
        let report = exp.run(&policy);
        assert!(
            report.outcomes.iter().all(|o| o.completion.is_some()),
            "{}",
            policy.label()
        );
    }
}

#[test]
fn tetriserve_holds_attainment_through_peaks() {
    let exp = diurnal(200, 15.0);
    let tetri = exp.run(&PolicyKind::TetriServe(TetriServeConfig::default()));
    let sp4 = exp.run(&PolicyKind::FixedSp(4));
    assert!(
        sar(&tetri.outcomes) > sar(&sp4.outcomes),
        "tetri {} vs sp4 {}",
        sar(&tetri.outcomes),
        sar(&sp4.outcomes)
    );
    // TetriServe's worst window stays serviceable.
    let series = windowed_sar(&tetri.outcomes, 120.0);
    let worst = series.iter().map(|&(_, v)| v).fold(1.0f64, f64::min);
    assert!(worst > 0.4, "worst window {worst}: {series:?}");
}
