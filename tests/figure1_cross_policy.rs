//! The paper's Figure 1 motivating example, cross-policy: three requests
//! with different sizes and deadlines arrive over time. Static parallelism
//! cannot meet all three SLOs; TetriServe's step-level adaptation can.

use tetriserve::baselines::{FixedSpPolicy, RsspPolicy};
use tetriserve::core::{Policy, RequestSpec, ServeReport, Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, CostTable, DitModel, Profiler, Resolution};
use tetriserve::simulator::time::SimTime;
use tetriserve::simulator::trace::{RequestId, TenantId};
use tetriserve::workload::SloPolicy;

fn costs() -> CostTable {
    Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
}

/// The Figure-1 toy workload at SLO scale 1.3×.
fn workload() -> Vec<RequestSpec> {
    let mk = |id: u64, res: Resolution, arrival: f64, slo: f64| RequestSpec {
        tenant: TenantId::UNTAGGED,
        id: RequestId(id),
        resolution: res,
        arrival: SimTime::from_secs_f64(arrival),
        deadline: SimTime::from_secs_f64(arrival + slo * 1.3),
        total_steps: 50,
        stages: tetriserve::costmodel::StageProfile::FLAT,
    };
    vec![
        mk(0, Resolution::R512, 0.0, 2.0),
        mk(1, Resolution::R1024, 0.0, 3.0),
        mk(2, Resolution::R2048, 1.0, 5.0),
    ]
}

fn serve<P: Policy>(policy: P) -> ServeReport {
    Server::new(costs(), policy).run(workload())
}

#[test]
fn tetriserve_meets_all_three_deadlines() {
    let c = costs();
    let report = serve(TetriServePolicy::with_defaults(&c));
    assert_eq!(report.sar(), 1.0, "{:#?}", report.outcomes);
}

#[test]
fn fixed_sp1_misses_the_large_requests() {
    let report = serve(FixedSpPolicy::new(1));
    let met: Vec<bool> = report.outcomes.iter().map(|o| o.met_slo()).collect();
    assert!(met[0], "512² fits on one GPU");
    assert!(!met[2], "2048² on one GPU takes ~30 s");
    assert!(report.sar() < 1.0);
}

#[test]
fn fixed_sp4_cannot_save_everything() {
    // SP=4: 2048² at SP=4 takes ~8.8 s — over even the scaled SLO.
    let report = serve(FixedSpPolicy::new(4));
    assert!(report.sar() < 1.0, "{:#?}", report.outcomes);
    assert!(
        !report.outcomes[2].met_slo(),
        "2048² cannot meet its deadline at fixed SP=4"
    );
}

#[test]
fn rssp_is_better_than_naive_but_below_tetriserve() {
    let c = costs();
    let rssp = RsspPolicy::from_profile(&c, &SloPolicy::paper_targets().base_targets());
    let rssp_sar = serve(rssp).sar();
    let sp1_sar = serve(FixedSpPolicy::new(1)).sar();
    let tetri_sar = serve(TetriServePolicy::with_defaults(&c)).sar();
    assert!(rssp_sar >= sp1_sar);
    assert!(tetri_sar >= rssp_sar);
}

#[test]
fn every_policy_completes_every_request() {
    let c = costs();
    for report in [
        serve(FixedSpPolicy::new(1)),
        serve(FixedSpPolicy::new(8)),
        serve(TetriServePolicy::with_defaults(&c)),
    ] {
        assert!(
            report
                .outcomes
                .iter()
                .all(|o| o.completion.is_some() && o.steps_executed == 50),
            "{}: {:#?}",
            report.policy,
            report.outcomes
        );
    }
}
