//! Stress scenarios from the curated library, served end to end.

use tetriserve::baselines::FixedSpPolicy;
use tetriserve::bench::Experiment;
use tetriserve::core::audit::audit;
use tetriserve::core::{Server, TetriServePolicy};
use tetriserve::costmodel::{ClusterSpec, DitModel, Profiler, Resolution};
use tetriserve::workload::scenarios;

fn costs() -> tetriserve::costmodel::CostTable {
    Profiler::new(DitModel::flux_dev(), ClusterSpec::h100x8()).analytic()
}

#[test]
fn feasible_deadline_cliff_is_fully_packed() {
    // Four 1024² requests sharing one deadline: two SP=4 pairs back to
    // back fit comfortably. TetriServe saves all four.
    let cliff = scenarios::deadline_cliff(4, Resolution::R1024, 1.0, 5.0, 5);
    let specs = Experiment::specs_from_records(
        &cliff.iter().map(|r| r.to_record()).collect::<Vec<_>>(),
        50,
    );
    let c = costs();
    let tetri = Server::new(c.clone(), TetriServePolicy::with_defaults(&c)).run(specs);
    assert_eq!(tetri.sar(), 1.0, "{:#?}", tetri.outcomes);
    assert!(audit(&tetri.trace, &tetri.outcomes).is_empty());
}

#[test]
fn overloaded_deadline_cliff_documents_the_fairness_limit() {
    // Eight identical-deadline 1024² requests overload the window. Fair
    // round-based progress thrashes here — every request advances, most
    // miss — while unfair FIFO-at-SP=8 pushes requests through one at a
    // time and saves more. This is a known weakness of deadline-driven
    // packing under overloaded *identical* deadlines (the survival bound
    // cannot distinguish the doomed from the savable); the paper's design
    // shares it. The test pins the behaviour so a future fix is visible.
    let cliff = scenarios::deadline_cliff(8, Resolution::R1024, 1.0, 5.0, 5);
    let specs = Experiment::specs_from_records(
        &cliff.iter().map(|r| r.to_record()).collect::<Vec<_>>(),
        50,
    );
    let c = costs();
    let tetri = Server::new(c.clone(), TetriServePolicy::with_defaults(&c)).run(specs.clone());
    let sp8 = Server::new(c, FixedSpPolicy::new(8)).run(specs);
    assert!(sp8.sar() > tetri.sar(), "{} vs {}", sp8.sar(), tetri.sar());
    // Everything still completes and the schedule is valid.
    assert!(tetri.outcomes.iter().all(|o| o.completion.is_some()));
    assert!(audit(&tetri.trace, &tetri.outcomes).is_empty());
}

#[test]
fn elephants_and_mice_all_survive_under_tetriserve() {
    // The Figure 1 head-of-line shape, repeated: big requests must not
    // starve the mice and vice versa.
    let w = scenarios::elephants_and_mice(6, 11);
    let specs =
        Experiment::specs_from_records(&w.iter().map(|r| r.to_record()).collect::<Vec<_>>(), 50);
    let c = costs();
    let report = Server::new(c.clone(), TetriServePolicy::with_defaults(&c)).run(specs.clone());
    let mice_met = report
        .outcomes
        .iter()
        .filter(|o| o.resolution == Resolution::R256 && o.met_slo())
        .count();
    assert!(mice_met >= 16, "mice survive the elephants: {mice_met}/18");
    // SP=1 FIFO starves the elephants completely.
    let sp1 = Server::new(c, FixedSpPolicy::new(1)).run(specs);
    let elephants_met = sp1
        .outcomes
        .iter()
        .filter(|o| o.resolution == Resolution::R2048 && o.met_slo())
        .count();
    assert_eq!(elephants_met, 0);
}

#[test]
fn flash_crowd_completes_everything() {
    let w = scenarios::flash_crowd(120, 12.0, 17);
    let specs =
        Experiment::specs_from_records(&w.iter().map(|r| r.to_record()).collect::<Vec<_>>(), 50);
    let c = costs();
    let report = Server::new(c.clone(), TetriServePolicy::with_defaults(&c)).run(specs);
    assert!(report.outcomes.iter().all(|o| o.completion.is_some()));
    assert!(report.sar() > 0.5, "{}", report.sar());
    assert!(audit(&report.trace, &report.outcomes).is_empty());
}
