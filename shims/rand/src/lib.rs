//! Offline shim for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the minimal subset of the `rand` API it actually uses: a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same
//! algorithm real `rand` uses for `SmallRng` on 64-bit targets), the
//! [`SeedableRng`] constructor and the [`RngExt`] sampling methods.
//!
//! Only determinism and a reasonable distribution matter for the
//! simulator; this is not a cryptographic or statistically audited RNG.

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods, mirroring the `rand 0.9+` `Rng`/`RngExt`
/// surface the workspace uses (`random::<T>()`, `random_range(a..b)`).
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a supported type (`f64` in `[0, 1)`, full-range
    /// integers, `bool`).
    fn random<T: sample::Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: sample::SampleRange>(&mut self, range: R) -> R::Item
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors (and used by rand itself).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngExt for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod sample {
    //! Type-driven sampling used by [`crate::RngExt`].

    use crate::RngExt;

    /// Types samplable via `rng.random::<T>()`.
    pub trait Sample {
        /// Draws one value from `rng`.
        fn sample<R: RngExt>(rng: &mut R) -> Self;
    }

    impl Sample for u64 {
        fn sample<R: RngExt>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Sample for u32 {
        fn sample<R: RngExt>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Sample for bool {
        fn sample<R: RngExt>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Sample for f64 {
        fn sample<R: RngExt>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1), rand's standard mapping.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Ranges samplable via `rng.random_range(range)`.
    pub trait SampleRange {
        /// The element type of the range.
        type Item;
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngExt>(self, rng: &mut R) -> Self::Item;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Item = $t;
                fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    // Multiply-shift bounded sampling (Lemire); the slight
                    // bias for astronomically large spans is irrelevant for
                    // simulation workloads.
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    self.start + hi as $t
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Item = $t;
                fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end - start) as u64 + 1;
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    start + hi as $t
                }
            }
        )*};
    }
    impl_int_range!(u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
