//! Offline shim for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal property-testing harness exposing the subset of the proptest
//! API the test suite uses: the [`proptest!`] macro, range / tuple /
//! [`collection::vec`] strategies, `any::<T>()`, `prop_map`, the
//! `prop_assert*` macros and `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; re-running is deterministic (the RNG seed is derived from the
//!   test name), so failures reproduce exactly.
//! * **Fewer default cases.** `ProptestConfig::default()` runs 64 cases to
//!   keep `cargo test` quick; tests that ask for an explicit case count get
//!   exactly that.

use std::fmt;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: the case is outside the property's domain
    /// and is skipped without counting against it.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Whether this is an assume-rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume"),
        }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a string (the test name) so every property has
    /// its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform u64 in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling span");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Full-range strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Rejects the current case (skips it) when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(256).max(1024),
                            "prop_assume rejected too many cases ({rejected}); \
                             strategy domain is too narrow"
                        );
                    }
                    ::core::result::Result::Err(e) => {
                        panic!(
                            "property {} failed after {} cases: {}\n  inputs: {}",
                            stringify!($name),
                            accepted,
                            e,
                            inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in crate::collection::vec((0u32..5, any::<bool>()), 2..6)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _b) in &v {
                prop_assert!(*n < 5);
            }
        }

        #[test]
        fn prop_map_applies(d in (0usize..3).prop_map(|i| 1usize << i)) {
            prop_assert!([1, 2, 4].contains(&d));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = TestRng::from_name("seed-test");
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_surface_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(false, "forced failure for x={}", x);
            }
        }
        always_fails();
    }
}
