//! Offline shim for `serde`.
//!
//! The build container has no crates.io access. The workspace only uses
//! serde as derive decoration (`#[derive(serde::Serialize,
//! serde::Deserialize)]`) on cost-model and workload structs — nothing
//! actually serialises through serde traits (trace/workload I/O is
//! hand-rolled text). This proc-macro crate provides no-op derives with
//! the same paths so those annotations compile unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
