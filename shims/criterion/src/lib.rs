//! Offline shim for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the minimal subset of the criterion API the benches use: `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize` and the `criterion_group!`
//! / `criterion_main!` macros. Timings are simple mean-of-N wall-clock
//! measurements printed to stdout — enough to eyeball regressions, with no
//! statistical analysis.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim sizes every batch individually).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 20 }
    }
}

impl Criterion {
    /// Parses CLI configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
            measured: 0,
        };
        f(&mut b);
        let mean = if b.measured > 0 {
            b.elapsed / u32::try_from(b.measured).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!("bench {id:<48} mean {mean:?} over {} iters", b.measured);
        self
    }
}

/// Measures closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measured: u64,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = f();
            self.elapsed += start.elapsed();
            self.measured += 1;
            drop(out);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.measured += 1;
            drop(out);
        }
    }
}

/// Re-export matching criterion's `black_box` location in older releases.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Groups benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion { iters: 3 };
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion { iters: 4 };
        let mut produced = Vec::new();
        c.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |x| produced.push(x), BatchSize::SmallInput)
        });
        assert_eq!(produced, vec![7, 7, 7, 7]);
    }
}
